"""The pure-python simcore backend: bytearray/array/memoryview only.

No third-party imports -- this module (and everything it pulls in) must
import on a bare python install, because the CI fallback leg runs the
whole tier-1 suite with numpy uninstalled.

Every kernel is the observable-state twin of its numpy counterpart in
:mod:`repro.simcore.fastcore`: same results, same iteration order, same
run boundaries, down to the byte.  Where the fast backend leans on
vectorization, this one leans on the C-speed bulk primitives the
stdlib already has -- ``bytearray`` slice compare (memcmp),
``memoryview.cast`` word views, ``struct`` packing -- and falls back to
plain loops only for the residual byte-level work.
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

from repro.simcore.dtypes import DType
from repro.simcore.tags import TagArrayBase

BACKEND = "python"


# ----------------------------------------------------------------------
# block buffers
# ----------------------------------------------------------------------
def alloc_block(n: int) -> bytearray:
    """A zero-filled mutable byte buffer of ``n`` bytes."""
    return bytearray(n)


def empty_block(n: int) -> bytearray:
    """An uninitialized buffer (zero-filled here; callers overwrite)."""
    return bytearray(n)


def frombytes(data) -> bytearray:
    """An independent mutable buffer holding a copy of ``data``."""
    return bytearray(data)


def copy_of(buf) -> bytearray:
    return bytearray(buf)


def buf_eq(a, b) -> bool:
    """Whole-buffer equality: bytearray compare is a single C memcmp."""
    return a == b


def tobytes(buf) -> bytes:
    return bytes(buf)


def fill(buf: bytearray, start: int, stop: int, value: int) -> None:
    if stop > start:
        buf[start:stop] = bytes([value]) * (stop - start)


def as_payload(data):
    """Coerce external bytes-like input to a sliceable byte buffer."""
    if isinstance(data, (bytes, bytearray)):
        return data
    if isinstance(data, memoryview):
        return data.cast("B") if data.format != "B" else data
    # numpy arrays (tests may hand them over even under this backend),
    # lists of ints, anything buffer-like
    try:
        return bytes(memoryview(data).cast("B"))
    except TypeError:
        return bytes(data)


# ----------------------------------------------------------------------
# typed views and packing
# ----------------------------------------------------------------------
class TypedView:
    """A typed vector view over a byte buffer -- the pure-python
    stand-in for the numpy view ``fastcore.typed_view`` returns.

    Supports what callers of shared-array slices actually use:
    indexing, item assignment, iteration, ``len``, ``sum``, ``tolist``,
    ``copy``, equality, and ``__array__`` so numpy consumers in mixed
    environments (the fallback-parity CI leg runs the full test suite
    with numpy installed but this backend forced) can convert it.
    """

    __slots__ = ("_mv",)

    def __init__(self, mv: memoryview):
        self._mv = mv

    def __len__(self) -> int:
        return len(self._mv)

    def __getitem__(self, i):
        r = self._mv[i]
        return TypedView(r) if isinstance(r, memoryview) else r

    def __setitem__(self, i, value) -> None:
        self._mv[i] = value

    def __iter__(self):
        return iter(self._mv)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TypedView):
            return self._mv == other._mv
        if isinstance(other, (memoryview, bytes, bytearray)):
            return self._mv == other
        return NotImplemented  # type: ignore[return-value]

    __hash__ = None  # type: ignore[assignment]

    def sum(self):
        return sum(self._mv)

    def tolist(self) -> list:
        return self._mv.tolist()

    def copy(self) -> "TypedView":
        return TypedView(memoryview(bytearray(self._mv.tobytes())).cast(self._mv.format))

    def __array__(self, dtype=None, copy=None):
        import numpy  # only reachable when numpy exists in the env

        a = numpy.asarray(self._mv)
        return a if dtype is None else a.astype(dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TypedView({self._mv.format}, {self.tolist()!r})"


def typed_view(buf, dt: DType) -> TypedView:
    """View a byte buffer as elements of ``dt`` (zero copy)."""
    mv = memoryview(buf)
    if mv.format != "B":
        mv = mv.cast("B")
    return TypedView(mv.cast(dt.code))


def pack_scalar(value: Any, dt: DType) -> bytes:
    """One value as its byte representation."""
    return struct.pack(dt.code, value)


def pack_values(values: Any, shape, dt: DType) -> bytes:
    """A sequence (or nested sequence) as bytes; shape-checked."""
    flat: List[Any] = []
    _flatten_into(values, tuple(shape), flat, shape)
    return struct.pack(f"{len(flat)}{dt.code}", *flat)


def _flatten_into(values, shape, out: List[Any], full_shape) -> None:
    if not shape:
        out.append(values)
        return
    vals = list(values)
    if len(vals) != shape[0]:
        raise ValueError(f"value shape mismatch != expected {tuple(full_shape)}")
    for v in vals:
        _flatten_into(v, shape[1:], out, full_shape)


# ----------------------------------------------------------------------
# access-tag tables
# ----------------------------------------------------------------------
def nonzero_u8(tags: bytearray) -> List[int]:
    """Indices of non-zero bytes, ascending."""
    return [i for i, t in enumerate(tags) if t]


class TagArray(TagArrayBase):
    """Dense tag table; bulk scans are plain byte loops."""

    __slots__ = ()
    _nonzero = staticmethod(nonzero_u8)


# ----------------------------------------------------------------------
# vector-clock kernels
# ----------------------------------------------------------------------
def vc_alloc(n: int) -> List[int]:
    """A zeroed clock vector.  Plain lists index faster than any typed
    container in pure python, and this backend never vectorizes."""
    return [0] * n


def vc_merge_into(v, other) -> None:
    """Elementwise ``v[i] = max(v[i], other[i])`` into ``v``."""
    i = 0
    for x in other:
        if x > v[i]:
            v[i] = x
        i += 1


def vc_dominates(v, other) -> bool:
    """True iff ``v[i] >= other[i]`` for every component."""
    i = 0
    for x in other:
        if v[i] < x:
            return False
        i += 1
    return True


# ----------------------------------------------------------------------
# twin/diff run extraction
# ----------------------------------------------------------------------
def diff_runs(dirty, twin) -> List[Tuple[int, bytes]]:
    """Changed-byte runs of ``dirty`` vs ``twin``: maximal groups of
    consecutive differing byte offsets, as (offset, copied data).

    Strategy: one memcmp rules out the no-change case; then a word scan
    over 8-byte views locates the changed words and only those words are
    refined byte-by-byte.  For the sparse-write patterns twin/diff
    exists to exploit, the python-level loop touches a small fraction
    of the block.
    """
    # Normalize foreign buffer types (tests hand numpy arrays in even
    # when this backend is forced) to byte-compare cleanly.
    if not isinstance(dirty, (bytes, bytearray)):
        dirty = memoryview(dirty).cast("B")
    if not isinstance(twin, (bytes, bytearray)):
        twin = memoryview(twin).cast("B")
    if dirty == twin:
        return []
    idx: List[int] = []
    n = len(dirty)
    words = n >> 3
    if words:
        end = words << 3
        dw = memoryview(dirty)[:end].cast("Q")
        tw = memoryview(twin)[:end].cast("Q")
        for w in range(words):
            if dw[w] != tw[w]:
                base = w << 3
                for o in range(base, base + 8):
                    if dirty[o] != twin[o]:
                        idx.append(o)
    for o in range(words << 3, n):
        if dirty[o] != twin[o]:
            idx.append(o)
    runs: List[Tuple[int, bytes]] = []
    start = prev = idx[0]
    for o in idx[1:]:
        if o != prev + 1:
            runs.append((start, bytes(dirty[start : prev + 1])))
            start = o
        prev = o
    runs.append((start, bytes(dirty[start : prev + 1])))
    return runs
