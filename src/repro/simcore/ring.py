"""Sequence-indexed ring buffer for per-link message queues.

The reliable transport holds out-of-order arrivals per (src, dst) link
until the sequence gap fills.  Held sequence numbers all lie inside the
retransmit window just above the link's delivery cursor, which makes a
power-of-two ring addressed by ``seq & mask`` the natural store: O(1)
membership, insert and pop with no hashing and no per-entry allocation.
The ring doubles itself on slot collision, so pathological windows
(deep reordering under heavy chaos) stay correct -- they just pay one
rehash.

Both simcore backends share this structure: it holds *objects*
(messages), so there is nothing for numpy to vectorize.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple


class SeqRing:
    """A sparse window of items keyed by monotone sequence number."""

    __slots__ = ("_slots", "_mask", "_count")

    def __init__(self, capacity: int = 16):
        cap = 1
        while cap < capacity:
            cap <<= 1
        self._slots: List[Optional[Tuple[int, Any]]] = [None] * cap
        self._mask = cap - 1
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __contains__(self, seq: int) -> bool:
        slot = self._slots[seq & self._mask]
        return slot is not None and slot[0] == seq

    def put(self, seq: int, item: Any) -> bool:
        """Insert; returns False (and stores nothing) if ``seq`` is
        already present.  Grows on collision with a different live
        sequence number."""
        while True:
            i = seq & self._mask
            slot = self._slots[i]
            if slot is None:
                self._slots[i] = (seq, item)
                self._count += 1
                return True
            if slot[0] == seq:
                return False
            self._grow()

    def pop(self, seq: int) -> Any:
        """Remove and return the item at ``seq``; KeyError if absent."""
        i = seq & self._mask
        slot = self._slots[i]
        if slot is None or slot[0] != seq:
            raise KeyError(seq)
        self._slots[i] = None
        self._count -= 1
        return slot[1]

    def items(self) -> Iterator[Tuple[int, Any]]:
        """Live (seq, item) pairs in ascending sequence order."""
        return iter(sorted(s for s in self._slots if s is not None))

    def _grow(self) -> None:
        live = [s for s in self._slots if s is not None]
        cap = len(self._slots)
        # Double until every live sequence number lands in its own
        # slot (two seqs collide iff they differ by a multiple of cap,
        # so a big enough power of two always separates a finite set).
        while True:
            cap <<= 1
            mask = cap - 1
            if len({seq & mask for seq, _ in live}) == len(live):
                break
        self._slots = [None] * cap
        self._mask = mask
        for slot in live:
            self._slots[slot[0] & mask] = slot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SeqRing {self._count}/{len(self._slots)}>"
