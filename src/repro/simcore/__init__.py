"""The simulator-core kernel layer: fast (numpy) vs fallback (pure python).

Every byte- and integer-plane operation the simulator's hot paths need
-- block buffers, access-tag tables, vector-clock merges, twin/diff run
extraction, sequence-indexed link buffers -- is defined once as a small
kernel interface and implemented twice:

* :mod:`repro.simcore.fastcore` -- flat ``numpy`` arrays, whole-buffer
  compares, ``np.flatnonzero``-style run extraction (the default
  whenever numpy imports);
* :mod:`repro.simcore.pycore` -- ``bytearray``/``array``/``memoryview``
  only, no third-party imports at all.

Both implementations conform to the same interface and -- this is the
contract the differential tests in ``tests/test_simcore.py`` and the
bit-identity CI job pin -- produce *identical observable state* for
identical operation sequences, down to the bytes of every diff run and
the order of every tag-table iteration.  A simulation run is therefore
bit-identical (same stats-sha) whichever backend executed it.

Backend selection happens once, at import:

* ``REPRO_SIMCORE=fast`` (or ``numpy``) forces the numpy backend and
  raises ``ImportError`` if numpy is unavailable;
* ``REPRO_SIMCORE=python`` (or ``fallback``/``pure``) forces the pure
  python backend even when numpy is installed -- this is what the CI
  fallback-parity leg and the bit-identity matrix use;
* unset (or ``auto``): numpy if it imports, pure python otherwise.

The selected backend's name is exposed as :data:`BACKEND` (``"fast"``
or ``"python"``) and is reported by ``repro-dsm perf``.
"""

from __future__ import annotations

import os

_ENV_VAR = "REPRO_SIMCORE"
_choice = os.environ.get(_ENV_VAR, "auto").strip().lower()

if _choice in ("fast", "numpy"):
    from repro.simcore import fastcore as _impl
elif _choice in ("python", "fallback", "pure"):
    from repro.simcore import pycore as _impl
elif _choice in ("auto", ""):
    try:
        from repro.simcore import fastcore as _impl  # type: ignore[no-redef]
    except ImportError:  # numpy absent
        from repro.simcore import pycore as _impl  # type: ignore[no-redef]
else:
    raise ImportError(
        f"{_ENV_VAR}={_choice!r} is not a simcore backend "
        "(use 'fast', 'python', or 'auto')"
    )

#: the active backend: "fast" (numpy) or "python" (pure fallback)
BACKEND: str = _impl.BACKEND

#: True when the active backend vectorizes through numpy
USING_NUMPY: bool = BACKEND == "fast"

# ----------------------------------------------------------------------
# kernel re-exports (one bound name per kernel; hot callers re-bind
# these as locals/module globals so dispatch costs nothing per call)
# ----------------------------------------------------------------------
# block buffers
alloc_block = _impl.alloc_block
empty_block = _impl.empty_block
frombytes = _impl.frombytes
copy_of = _impl.copy_of
buf_eq = _impl.buf_eq
tobytes = _impl.tobytes
fill = _impl.fill
as_payload = _impl.as_payload

# typed views over raw byte buffers
typed_view = _impl.typed_view
pack_scalar = _impl.pack_scalar
pack_values = _impl.pack_values

# access-tag tables
TagArray = _impl.TagArray
nonzero_u8 = _impl.nonzero_u8

# vector-clock kernels
vc_alloc = _impl.vc_alloc
vc_merge_into = _impl.vc_merge_into
vc_dominates = _impl.vc_dominates

# twin/diff run extraction
diff_runs = _impl.diff_runs

from repro.simcore.dtypes import DType, dtype  # noqa: E402
from repro.simcore.ring import SeqRing  # noqa: E402

__all__ = [
    "BACKEND",
    "USING_NUMPY",
    "alloc_block",
    "empty_block",
    "frombytes",
    "copy_of",
    "buf_eq",
    "tobytes",
    "fill",
    "as_payload",
    "typed_view",
    "pack_scalar",
    "pack_values",
    "TagArray",
    "nonzero_u8",
    "vc_alloc",
    "vc_merge_into",
    "vc_dominates",
    "diff_runs",
    "DType",
    "dtype",
    "SeqRing",
]
