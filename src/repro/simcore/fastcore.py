"""The numpy simcore backend: flat arrays, whole-buffer compares,
vectorized run extraction.

Every kernel here has a pure-python twin in :mod:`repro.simcore.pycore`
producing bit-identical observable state; ``tests/test_simcore.py``
drives both through randomized operation sequences to keep it that way.

Small-size honesty: numpy call overhead (~1 us per ufunc) dwarfs the
work for the paper's 16-node vector clocks, so the vector-clock kernels
only vectorize above :data:`_VC_VECTOR_MIN` elements and use the same
early-exit loops as the fallback below it.  The results are identical
either way (integer max is integer max); only the constant factor
changes.  Block-plane kernels (diff, compares, fills) vectorize at
every size -- blocks are 64-16384 bytes, past the crossover already.
"""

from __future__ import annotations

from array import array
from typing import Any, List, Tuple

import numpy as np

from repro.simcore.dtypes import DType
from repro.simcore.tags import TagArrayBase

BACKEND = "fast"

#: vector-clock length at which numpy beats the early-exit loop
_VC_VECTOR_MIN = 64

_u8 = np.uint8
_i64 = np.int64


# ----------------------------------------------------------------------
# block buffers
# ----------------------------------------------------------------------
def alloc_block(n: int) -> np.ndarray:
    """A zero-filled mutable byte buffer of ``n`` bytes."""
    return np.zeros(n, dtype=_u8)


def empty_block(n: int) -> np.ndarray:
    """An uninitialized byte buffer (caller overwrites every byte)."""
    return np.empty(n, dtype=_u8)


def frombytes(data) -> np.ndarray:
    """An independent mutable buffer holding a copy of ``data``."""
    return np.frombuffer(bytes(data), dtype=_u8).copy()


def copy_of(buf: np.ndarray) -> np.ndarray:
    return buf.copy()


def buf_eq(a: np.ndarray, b: np.ndarray) -> bool:
    """Whole-buffer equality: one C memcmp for contiguous u8 buffers."""
    return a.data == b.data


def tobytes(buf: np.ndarray) -> bytes:
    return buf.tobytes()


def fill(buf: np.ndarray, start: int, stop: int, value: int) -> None:
    buf[start:stop] = value


def as_payload(data) -> np.ndarray:
    """Coerce external bytes-like input to a sliceable byte buffer."""
    if isinstance(data, np.ndarray):
        return data if data.dtype == _u8 else data.view(_u8)
    if isinstance(data, (bytes, bytearray, memoryview)):
        # zero-copy read-only view; payloads are only sliced from
        return np.frombuffer(data, dtype=_u8)
    return np.asarray(data, dtype=_u8)


# ----------------------------------------------------------------------
# typed views and packing
# ----------------------------------------------------------------------
def typed_view(buf, dt: DType):
    """View a byte buffer as elements of ``dt`` (zero copy)."""
    if isinstance(buf, np.ndarray):
        return buf.view(np.dtype(dt.name))
    return np.frombuffer(buf, dtype=np.dtype(dt.name))


def pack_scalar(value: Any, dt: DType) -> np.ndarray:
    """One value as its byte representation."""
    return np.array([value], dtype=np.dtype(dt.name)).view(_u8)


def pack_values(values: Any, shape, dt: DType) -> np.ndarray:
    """A sequence (or nested sequence) as bytes; shape-checked."""
    arr = np.asarray(values, dtype=np.dtype(dt.name))
    if arr.shape != shape:
        raise ValueError(f"value shape {arr.shape} != expected {shape}")
    return np.ascontiguousarray(arr).view(_u8).ravel()


# ----------------------------------------------------------------------
# access-tag tables
# ----------------------------------------------------------------------
def nonzero_u8(tags: bytearray) -> List[int]:
    """Indices of non-zero bytes, ascending."""
    return np.flatnonzero(np.frombuffer(tags, dtype=_u8)).tolist()


class TagArray(TagArrayBase):
    """Dense tag table with vectorized bulk scans."""

    __slots__ = ()
    _nonzero = staticmethod(nonzero_u8)


# ----------------------------------------------------------------------
# vector-clock kernels
# ----------------------------------------------------------------------
def vc_alloc(n: int):
    """A zeroed clock vector.

    Below the vectorization crossover a plain list wins (list indexing
    beats ``array('q')`` by ~1.5x and numpy call overhead dwarfs the
    work); at and above it an ``array('q')`` exposes the raw int64
    buffer the vectorized kernels operate on zero-copy.
    """
    if n < _VC_VECTOR_MIN:
        return [0] * n
    return array("q", bytes(8 * n))


def vc_merge_into(v, other) -> None:
    """Elementwise ``v[i] = max(v[i], other[i])`` into ``v``.

    ``v`` is an ``array('q')``; ``other`` any int sequence of the same
    length.  Vectorizes above the small-clock crossover.
    """
    n = len(v)
    if n >= _VC_VECTOR_MIN:
        a = np.frombuffer(v, dtype=_i64)
        try:
            b = np.frombuffer(other, dtype=_i64)
        except TypeError:
            b = np.asarray(other, dtype=_i64)
        np.maximum(a, b, out=a)
        return
    i = 0
    for x in other:
        if x > v[i]:
            v[i] = x
        i += 1


def vc_dominates(v, other) -> bool:
    """True iff ``v[i] >= other[i]`` for every component."""
    n = len(v)
    if n >= _VC_VECTOR_MIN:
        a = np.frombuffer(v, dtype=_i64)
        try:
            b = np.frombuffer(other, dtype=_i64)
        except TypeError:
            b = np.asarray(other, dtype=_i64)
        return bool((a >= b).all())
    i = 0
    for x in other:
        if v[i] < x:
            return False
        i += 1
    return True


# ----------------------------------------------------------------------
# twin/diff run extraction
# ----------------------------------------------------------------------
def diff_runs(dirty, twin) -> List[Tuple[int, np.ndarray]]:
    """Changed-byte runs of ``dirty`` vs ``twin``: maximal groups of
    consecutive differing byte offsets, as (offset, copied data)."""
    # Normalize foreign buffer types (tests hand bytes in; the storage
    # layer always hands ndarrays) to byte arrays.
    if not isinstance(dirty, np.ndarray):
        dirty = np.frombuffer(dirty, dtype=_u8)
    if not isinstance(twin, np.ndarray):
        twin = np.frombuffer(twin, dtype=_u8)
    # Fast path: unchanged block (write fault taken, same bytes stored
    # back).  A memoryview compare is a single C memcmp for the
    # contiguous uint8 blocks the storage layer hands us -- much
    # cheaper than materializing the inequality mask.
    if dirty.data == twin.data:
        return []
    idx = np.flatnonzero(dirty != twin)
    lo = int(idx[0])
    hi = int(idx[-1]) + 1
    if hi - lo == idx.size:
        # Single contiguous run (a sequential sweep over the block):
        # skip the run-splitting machinery entirely.
        return [(lo, dirty[lo:hi].copy())]
    runs: List[Tuple[int, np.ndarray]] = []
    # Split the changed-byte indices into maximal contiguous runs.
    breaks = np.flatnonzero(np.diff(idx) > 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [idx.size - 1]))
    for s, e in zip(starts, ends):
        lo = int(idx[s])
        hi = int(idx[e]) + 1
        runs.append((lo, dirty[lo:hi].copy()))
    return runs
