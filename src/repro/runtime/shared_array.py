"""Typed shared arrays over the DSM address space.

These provide the convenience layer the correctness tests and example
programs use: real values move through the protocols, so a value
written on one node under proper synchronization is exactly the value
read on another.

Element types are described by :func:`repro.simcore.dtype` (which
accepts numpy dtypes, python ``float``/``int``, and string names), and
values are packed/viewed through the active simcore backend -- numpy
views under the fast core, ``memoryview.cast``/``struct`` under the
pure-python fallback.

All accessors are generators (they may fault) and must be driven with
``yield from`` inside an application process.
"""

from __future__ import annotations

from typing import Generator, Tuple

from repro.memory.address_space import Segment
from repro.runtime.dsm import Dsm
from repro.simcore import dtype as _dtype
from repro.simcore import pack_scalar, pack_values, typed_view


class SharedArray:
    """A 1-D typed array in shared memory.

    Create one per machine (the segment is shared); access it through a
    node's :class:`Dsm` handle passed per call.
    """

    def __init__(self, machine, name: str, length: int, dtype="float64"):
        self.dtype = _dtype(dtype)
        self.length = length
        self.itemsize = self.dtype.itemsize
        self.segment: Segment = machine.alloc(length * self.itemsize, name)
        self.machine = machine

    def addr(self, index: int) -> int:
        if not 0 <= index < self.length:
            raise IndexError(f"index {index} out of range [0, {self.length})")
        return self.segment.base + index * self.itemsize

    def nbytes_of(self, count: int) -> int:
        return count * self.itemsize

    # ------------------------------------------------------------------
    # element access
    # ------------------------------------------------------------------
    def get(self, dsm: Dsm, index: int) -> Generator:
        raw = yield from dsm.read(self.addr(index), self.itemsize)
        return typed_view(raw, self.dtype)[0]

    def set(self, dsm: Dsm, index: int, value) -> Generator:
        yield from dsm.write(self.addr(index), pack_scalar(value, self.dtype))

    # ------------------------------------------------------------------
    # slice access
    # ------------------------------------------------------------------
    def get_slice(self, dsm: Dsm, start: int, stop: int) -> Generator:
        if not 0 <= start <= stop <= self.length:
            raise IndexError(f"slice [{start}:{stop}] out of range")
        raw = yield from dsm.read(self.addr(start) if stop > start else self.segment.base,
                                  (stop - start) * self.itemsize)
        return typed_view(raw, self.dtype)

    def set_slice(self, dsm: Dsm, start: int, values) -> Generator:
        stop = start + len(values)
        if not 0 <= start <= stop <= self.length:
            raise IndexError(f"slice [{start}:{stop}] out of range")
        if len(values) == 0:
            return
        raw = pack_values(values, (len(values),), self.dtype)
        yield from dsm.write(self.addr(start), raw)

    # ------------------------------------------------------------------
    # initialization (pre-parallel, no simulated cost)
    # ------------------------------------------------------------------
    def init(self, values) -> None:
        if len(values) != self.length:
            raise ValueError("init length mismatch")
        self.machine.init_data(
            self.segment.base, pack_values(values, (self.length,), self.dtype)
        )

    def place(self, start: int, stop: int, node: int) -> None:
        """Declarative home placement of an index range."""
        if stop <= start:
            return
        self.machine.place(
            self.addr(start), (stop - start) * self.itemsize, node
        )


class SharedMatrix:
    """A row-major 2-D typed matrix in shared memory."""

    def __init__(self, machine, name: str, shape: Tuple[int, int], dtype="float64"):
        self.rows, self.cols = shape
        self.dtype = _dtype(dtype)
        self.itemsize = self.dtype.itemsize
        self.row_bytes = self.cols * self.itemsize
        self.segment: Segment = machine.alloc(self.rows * self.row_bytes, name)
        self.machine = machine

    def addr(self, r: int, c: int = 0) -> int:
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise IndexError(f"({r},{c}) out of range {self.rows}x{self.cols}")
        return self.segment.base + r * self.row_bytes + c * self.itemsize

    def get(self, dsm: Dsm, r: int, c: int) -> Generator:
        raw = yield from dsm.read(self.addr(r, c), self.itemsize)
        return typed_view(raw, self.dtype)[0]

    def set(self, dsm: Dsm, r: int, c: int, value) -> Generator:
        yield from dsm.write(self.addr(r, c), pack_scalar(value, self.dtype))

    def get_row(self, dsm: Dsm, r: int) -> Generator:
        raw = yield from dsm.read(self.addr(r, 0), self.row_bytes)
        return typed_view(raw, self.dtype)

    def set_row(self, dsm: Dsm, r: int, values) -> Generator:
        if len(values) != self.cols:
            raise ValueError("row length mismatch")
        raw = pack_values(values, (self.cols,), self.dtype)
        yield from dsm.write(self.addr(r, 0), raw)

    def init(self, values) -> None:
        raw = pack_values(values, (self.rows, self.cols), self.dtype)
        self.machine.init_data(self.segment.base, raw)

    def place_rows(self, start: int, stop: int, node: int) -> None:
        if stop <= start:
            return
        self.machine.place(self.addr(start, 0), (stop - start) * self.row_bytes, node)
