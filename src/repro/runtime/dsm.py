"""Per-node DSM handle: the API surface applications use.

Access model
------------
Applications issue *region* reads and writes.  The runtime decomposes a
region into coherence blocks and, per block, checks the Typhoon-0
access tag; a miss raises the 5 us fault exception and enters the
protocol.  The check-and-copy for each block is atomic with respect to
protocol handlers (no yield between the final tag check and the byte
copy), and is retried if a recall/steal races the fault reply -- the
exact semantics of a hardware store replaying after access is granted.

A region operation therefore produces the same per-block fault sequence
per-word instrumented code would, at region-op cost.  See DESIGN.md for
why this substitution is the one that keeps a Python reproduction
feasible.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Generator, Optional

from repro.cluster.machine import Machine
from repro.simcore import as_payload, empty_block, fill


class Dsm:
    """A node-local view of the shared memory system."""

    __slots__ = ("machine", "node", "params", "_bs", "_protocol", "_stats")

    def __init__(self, machine: Machine, node_id: int):
        self.machine = machine
        self.node = machine.nodes[node_id]
        self.params = machine.params
        self._bs = machine.blockspace
        self._protocol = machine.protocol
        self._stats = machine.stats

    @property
    def node_id(self) -> int:
        return self.node.id

    @property
    def now(self) -> float:
        return self.machine.engine.now

    # ------------------------------------------------------------------
    # compute
    # ------------------------------------------------------------------
    def compute(self, us: float) -> Generator:
        """Model ``us`` microseconds of local computation."""
        # Return the node's generator directly instead of delegating
        # with `yield from`: one less generator frame per compute call.
        return self.node.compute(us)

    # ------------------------------------------------------------------
    # shared-memory access
    # ------------------------------------------------------------------
    def _ensure(self, block: int, write: bool) -> Generator:
        node = self.node
        p = self.params
        while not node.access.permits(block, write):
            # Fault exception dispatch + requester-side protocol entry.
            # (Fault counting happens inside the protocols, which
            # distinguish real coherence faults from cheap node-local
            # tag re-opens -- the paper's tables only count the former.)
            yield p.fault_exception_us + p.handler_base_us
            if write:
                hooks = self.machine.hooks
                if hooks is not None:
                    hooks.on_write_fault(node.id, block)
                yield from self._protocol.write_fault(node, block)
            else:
                yield from self._protocol.read_fault(node, block)
            # Loop: re-check the tag -- the grant may have been stolen
            # by a recall/transfer that raced our reply (the hardware
            # analogue is the store replay after TLB/tag update).

    def read(self, addr: int, size: int) -> Generator:
        """Read ``size`` bytes at ``addr``; returns a byte buffer of
        the active simcore backend (uint8 array or bytearray)."""
        node = self.node
        hooks = self.machine.hooks
        if hooks is not None:
            hooks.on_region(node.id, addr, size, False)
        out = empty_block(size)
        permits_read = node.access.permits_read
        for block, off, roff, length in self._bs.block_slices(addr, size):
            if not permits_read(block):
                yield from self._ensure(block, write=False)
            out[roff : roff + length] = node.store.block(block)[off : off + length]
        return out

    def write(self, addr: int, data) -> Generator:
        """Write bytes at ``addr`` through the coherence protocol."""
        node = self.node
        hooks = self.machine.hooks
        if hooks is not None:
            hooks.on_region(node.id, addr, len(data), True)
        data = as_payload(data)
        permits = node.access.permits
        for block, off, roff, length in self._bs.block_slices(addr, len(data)):
            if not permits(block, True):
                yield from self._ensure(block, write=True)
            node.store.block(block)[off : off + length] = data[roff : roff + length]

    def touch_read(self, addr: int, size: int) -> Generator:
        """Ensure read access to a region without materializing bytes
        (used by apps that only need the access-pattern effects)."""
        hooks = self.machine.hooks
        if hooks is not None:
            hooks.on_region(self.node.id, addr, size, False)
        # Access-hit fast path: skip the _ensure generator entirely when
        # the tag already permits the access (the common case by far).
        permits_read = self.node.access.permits_read
        for block in self._bs.blocks_in_region(addr, size):
            if not permits_read(block):
                yield from self._ensure(block, write=False)

    def touch_write(self, addr: int, size: int, *, pattern: int = -1) -> Generator:
        """Ensure write access to a region and dirty it.

        ``pattern`` >= 0 additionally writes that byte value into the
        region so HLRC diffs are non-empty (performance apps vary the
        pattern per iteration to model real data changing).
        """
        node = self.node
        hooks = self.machine.hooks
        if hooks is not None:
            hooks.on_region(node.id, addr, size, True)
        permits = node.access.permits
        for block, off, roff, length in self._bs.block_slices(addr, size):
            if not permits(block, True):
                yield from self._ensure(block, write=True)
            if pattern >= 0:
                fill(node.store.block(block), off, off + length, pattern & 0xFF)

    # ------------------------------------------------------------------
    # checker annotations
    # ------------------------------------------------------------------
    @contextmanager
    def assume_disjoint(self, reason: str):
        """Scope declaring that this node's region touches inside model
        accesses the *original program* keeps conflict-free at element
        level (red-black colours, private accumulation arrays merged
        under locks, privately allocated pool entries), even though the
        model's region-granularity touches overlap other processors'.

        Pure annotation: it only notifies instrumentation hooks (the
        :mod:`repro.check` race detector suppresses -- and separately
        counts -- conflicts involving these accesses).  It costs no
        simulated time and sends no messages, so annotated programs
        produce bit-identical results.
        """
        hooks = self.machine.hooks
        if hooks is not None:
            hooks.on_assume_disjoint(self.node.id, True, reason)
        try:
            yield
        finally:
            hooks = self.machine.hooks
            if hooks is not None:
                hooks.on_assume_disjoint(self.node.id, False, reason)

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def acquire(self, lock_id: int) -> Generator:
        return self.machine.locks.acquire(self.node, lock_id)

    def release(self, lock_id: int) -> Generator:
        return self.machine.locks.release(self.node, lock_id)

    def barrier(self, barrier_id: int, participants: Optional[int] = None) -> Generator:
        return self.machine.barriers.barrier(self.node, barrier_id, participants)
