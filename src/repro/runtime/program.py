"""Program runner: spawn one application process per node, run the
machine, collect timing.

An application *program* is a callable ``program(dsm, rank, nprocs,
**kwargs) -> generator``; the runner creates the per-node Dsm handles,
wraps each generator in a simulation process, and runs the engine until
every process finishes.  The wall-clock simulation time of the parallel
section becomes ``stats.parallel_time_us``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.cluster.machine import Machine
from repro.runtime.dsm import Dsm
from repro.sim.process import Process
from repro.stats.counters import Stats


@dataclass
class ProgramResult:
    """Outcome of one program run."""

    machine: Machine
    stats: Stats
    elapsed_us: float
    results: List  # per-rank generator return values

    @property
    def speedup(self) -> float:
        return self.stats.speedup


def run_program(
    machine: Machine,
    program: Callable,
    nprocs: Optional[int] = None,
    sequential_time_us: float = 0.0,
    **kwargs,
) -> ProgramResult:
    """Run ``program`` on ``nprocs`` nodes (default: all) to completion.

    ``sequential_time_us`` is the modeled uniprocessor execution time
    of the same problem (no DSM, no polling instrumentation); it is
    stored in the stats so ``stats.speedup`` matches the paper's
    definition.
    """
    n = machine.params.n_nodes if nprocs is None else nprocs
    if not 1 <= n <= machine.params.n_nodes:
        raise ValueError(f"nprocs {n} out of range")
    start = machine.engine.now
    procs = []
    for rank in range(n):
        dsm = Dsm(machine, rank)
        gen = program(dsm, rank, n, **kwargs)
        procs.append(Process(machine.engine, gen, name=f"rank{rank}"))
    machine.run()
    unfinished = [p.name for p in procs if not p.finished]
    if unfinished:
        raise RuntimeError(
            f"deadlock: processes never finished: {unfinished} "
            f"(simulated t={machine.engine.now:.1f}us)"
        )
    elapsed = machine.engine.now - start
    machine.stats.parallel_time_us = elapsed
    machine.stats.sequential_time_us = sequential_time_us
    return ProgramResult(
        machine=machine,
        stats=machine.stats,
        elapsed_us=elapsed,
        results=[p.result for p in procs],
    )
