"""The DSM runtime: the API applications program against.

* :class:`~repro.runtime.dsm.Dsm` -- per-node handle offering
  ``compute`` / ``read`` / ``write`` / ``touch`` region operations plus
  ``acquire`` / ``release`` / ``barrier``.
* :class:`~repro.runtime.shared_array.SharedArray` -- typed numpy-backed
  view over a shared segment.
* :func:`~repro.runtime.program.run_program` -- spawn one application
  process per node and run the machine to completion.
"""

from repro.runtime.dsm import Dsm
from repro.runtime.shared_array import SharedArray
from repro.runtime.program import ProgramResult, run_program

__all__ = ["Dsm", "SharedArray", "run_program", "ProgramResult"]
