#!/usr/bin/env python
"""Application restructuring study (paper Section 5.3): the three
tree-building algorithms of Barnes-Hut.

Barnes-Original rebuilds one shared tree with per-cell locks; under the
LRC protocols the lock count explodes (release consistency needs the
extra synchronization), and with ~0.1 ms of computation between
synchronization events the relaxed protocols are *never worthwhile*.
Barnes-Parttree merges per-processor partial trees (fewer locks);
Barnes-Spatial partitions space and builds without locks at all, at
the cost of load imbalance.

Run::

    python examples/barnes_restructuring.py [--scale tiny|default]
"""

import argparse

from repro.harness.experiment import RunConfig, run_experiment
from repro.harness.tables import fmt_table

VERSIONS = ["barnes-original", "barnes-parttree", "barnes-spatial"]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--scale", default="default", choices=["tiny", "default", "full"])
    args = ap.parse_args()

    rows = []
    best = {}
    for app in VERSIONS:
        for proto in ("sc", "hlrc"):
            for g in (64, 4096) if proto == "sc" else (4096,):
                r = run_experiment(RunConfig(app=app, protocol=proto,
                                             granularity=g, scale=args.scale))
                s = r.stats
                rows.append((
                    app, f"{proto.upper()}-{g}", f"{r.speedup:.2f}",
                    s.total_lock_acquires,
                    f"{sum(n.lock_wait_us for n in s.nodes) / 1e3:.1f}",
                    f"{sum(n.barrier_wait_us for n in s.nodes) / 1e3:.1f}",
                ))
                best[(app, proto, g)] = r.speedup

    print(fmt_table(
        ["Version", "Combo", "Speedup", "Lock calls", "Lock wait (ms)",
         "Barrier wait (ms)"],
        rows,
        "Barnes-Hut restructuring: synchronization frequency vs protocols",
    ))
    print()
    orig_sc = best[("barnes-original", "sc", 64)]
    orig_hlrc = best[("barnes-original", "hlrc", 4096)]
    spat_hlrc = best[("barnes-spatial", "hlrc", 4096)]
    print(f"Barnes-Original: SC-64 {orig_sc:.2f} vs HLRC-4096 {orig_hlrc:.2f} "
          f"-> relaxed protocols {'never worthwhile' if orig_sc > orig_hlrc else 'worthwhile'} "
          "(paper: never worthwhile)")
    print(f"Restructuring for HLRC-4096: original {orig_hlrc:.2f} -> "
          f"spatial {spat_hlrc:.2f} "
          f"({spat_hlrc / orig_hlrc:.1f}x; paper reports 5x at full scale)")


if __name__ == "__main__":
    main()
