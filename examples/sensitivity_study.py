#!/usr/bin/env python
"""How platform costs decide the protocol/granularity question.

The paper's conclusions are prefixed "for our applications and
platform" for a reason: the best combination is a function of the cost
ratios.  This study sweeps two of them on LU under SC and watches the
granularity preference move:

* make access faults expensive (toward all-software SVM) and coarse
  blocks win harder — fewer faults matter more;
* make network bytes expensive and fine blocks claw back — coarse
  blocks move 64x the data per miss.

Run::

    python examples/sensitivity_study.py [--scale tiny|default]
"""

import argparse

from repro.analysis import granularity_preference, sweep_parameter

BAR = 40


def show(title, points, ratios):
    print(f"\n{title}")
    print(f"{'cost':>12s} {'sp@64':>7s} {'sp@4096':>8s} {'4096/64':>8s}")
    for p, r in zip(points, ratios):
        bar = "#" * int(round(BAR * min(r, 3.0) / 3.0))
        print(f"{p.value:12.4g} {p.speedups[64]:7.2f} "
              f"{p.speedups[4096]:8.2f} {r:8.2f} |{bar}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--scale", default="default", choices=["tiny", "default"])
    args = ap.parse_args()

    points = sweep_parameter(
        app="lu", field="fault_exception_us", multipliers=[1, 4, 16, 64],
        protocol="sc", granularities=[64, 4096], scale=args.scale,
    )
    show("Access-fault cost sweep (5us Typhoon-0 -> 320us worse-than-SVM):",
         points, granularity_preference(points, 64, 4096))

    points = sweep_parameter(
        app="lu", field="net_per_byte_us", multipliers=[0.25, 1, 4, 16],
        protocol="sc", granularities=[64, 4096], scale=args.scale,
    )
    show("Per-byte network cost sweep (fast link -> slow link):",
         points, granularity_preference(points, 64, 4096))

    print("\nReading: ratio > 1 means 4096-byte blocks win; the two sweeps "
          "pull the preference in opposite directions, and the paper's "
          "platform sits near the crossover -- hence 'no single combination "
          "performs best'.")


if __name__ == "__main__":
    main()
