#!/usr/bin/env python
"""Protocol showdown: reproduce the paper's central trade-off on two
contrasting applications.

* **Ocean-Original** (single writer, fine-grained column-border reads):
  fragmentation ruins coarse granularity; SC at 64 bytes does best, and
  relaxed protocols can't save the day -- the data just isn't there.
* **Volrend-Original** (multiple writer, 4x4-pixel tile tasks): image
  false sharing is everywhere; SC collapses at page granularity while
  HLRC's multiple-writer diffs shrug it off.

This is Figure 1's story in two panels.  Run::

    python examples/protocol_showdown.py [--scale tiny|default]
"""

import argparse

from repro.harness.experiment import RunConfig, run_experiment
from repro.harness.figures import speedup_figure
from repro.harness.matrix import sweep

APPS = ["ocean-original", "volrend-original"]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--scale", default="default", choices=["tiny", "default", "full"])
    args = ap.parse_args()

    results = sweep(APPS, scale=args.scale,
                    progress=lambda s: print(f"  running {s}..."))
    for app in APPS:
        print()
        print(speedup_figure(results, app, title=f"=== {app} ==="))

    # The paper's question 2: "for applications that suffer performance
    # losses in moving to coarser granularities under SC, can the
    # performance be regained using sophisticated protocols?"
    for app in APPS:
        sc64 = next(r.speedup for c, r in results.items()
                    if (c.app, c.protocol, c.granularity) == (app, "sc", 64))
        sc4k = next(r.speedup for c, r in results.items()
                    if (c.app, c.protocol, c.granularity) == (app, "sc", 4096))
        hl4k = next(r.speedup for c, r in results.items()
                    if (c.app, c.protocol, c.granularity) == (app, "hlrc", 4096))
        print(f"{app}: SC loses {sc64:.2f} -> {sc4k:.2f} moving to 4096; "
              f"HLRC regains it to {hl4k:.2f} "
              f"({'recovered' if hl4k > 0.8 * sc64 else 'NOT fully recovered'})")


if __name__ == "__main__":
    main()
