#!/usr/bin/env python
"""Polling vs interrupts (paper Section 5.4).

Two effects pull in opposite directions:

* polling instruments every control-flow backedge, dilating compute
  (LU runs 55% slower uniprocessor with the polling code inserted) but
  reacting to messages within ~1.5 us;
* interrupts cost ~70 us of Solaris signal handling per asynchronous
  message, but leave compute undisturbed -- and by *delaying*
  invalidations they let a node complete several accesses to a
  contended block before losing it (an accidental delayed-consistency
  implementation that damps SC's false-sharing ping-pong).

So coarse-grain, message-light applications (LU) prefer interrupts,
while communication-heavy ones prefer polling.  Run::

    python examples/notification_mechanisms.py [--scale tiny|default]
"""

import argparse

from repro.harness.experiment import RunConfig, run_experiment
from repro.harness.tables import fmt_table


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--scale", default="default", choices=["tiny", "default", "full"])
    args = ap.parse_args()

    rows = []
    for app, g in (("lu", 4096), ("volrend-original", 4096)):
        for proto in ("sc", "hlrc"):
            cells = {}
            for mech in ("polling", "interrupt"):
                r = run_experiment(RunConfig(app=app, protocol=proto,
                                             granularity=g, mechanism=mech,
                                             scale=args.scale))
                cells[mech] = r
            p, i = cells["polling"], cells["interrupt"]
            rows.append((
                app, proto.upper(),
                f"{p.speedup:.2f}", f"{i.speedup:.2f}",
                f"{i.speedup / p.speedup:.2f}x",
                p.stats.read_faults + p.stats.write_faults,
                i.stats.read_faults + i.stats.write_faults,
            ))
    print(fmt_table(
        ["Application", "Protocol", "Polling", "Interrupt", "int/poll",
         "Misses (poll)", "Misses (int)"],
        rows,
        "Section 5.4: notification mechanism trade-off at 4096-byte blocks",
    ))
    print("\nExpected: LU gains markedly from interrupts (paper: 44-66%); "
          "SC's miss count drops under interrupts for the false-sharing app.")


if __name__ == "__main__":
    main()
