#!/usr/bin/env python
"""Quickstart: build a tiny DSM cluster, run a parallel program on it,
and compare the three coherence protocols.

The program is a classic producer/consumer grid exchange: each of 4
nodes fills its slice of a shared array, synchronizes at a barrier, and
then reads the whole array.  Real bytes move through the simulated
protocols, so the sums below are computed from data that actually
traveled over the modeled Myrinet.

Run::

    python examples/quickstart.py
"""

import numpy as np

from repro import Machine, MachineParams, SharedArray, run_program

N = 4096            # array elements
NODES = 4


def program(dsm, rank, nprocs, arr=None):
    n = N // nprocs
    lo = rank * n
    # Produce: write my slice (through the coherence protocol).
    yield from arr.set_slice(dsm, lo, np.arange(lo, lo + n, dtype=np.float64))
    # Model some local computation too.
    yield from dsm.compute(500.0)  # microseconds
    yield from dsm.barrier(0, participants=nprocs)
    # Consume: read everything (faults pull remote blocks here).
    values = yield from arr.get_slice(dsm, 0, N)
    yield from dsm.barrier(0, participants=nprocs)
    return float(values.sum())


def main():
    expected = float(np.arange(N).sum())
    print(f"{'protocol':8s} {'granularity':>11s} {'time (ms)':>10s} "
          f"{'read faults':>11s} {'write faults':>12s} {'traffic':>10s} ok")
    for protocol in ("sc", "swlrc", "hlrc"):
        for granularity in (64, 1024, 4096):
            params = MachineParams(n_nodes=NODES, granularity=granularity)
            machine = Machine(params, protocol=protocol)
            arr = SharedArray(machine, "data", N, dtype=np.float64)
            arr.init(np.zeros(N))

            result = run_program(
                machine, program, nprocs=NODES,
                sequential_time_us=NODES * 500.0, arr=arr,
            )
            ok = all(abs(x - expected) < 1e-9 for x in result.results)
            s = result.stats
            print(
                f"{protocol:8s} {granularity:11d} "
                f"{result.elapsed_us / 1e3:10.2f} {s.read_faults:11d} "
                f"{s.write_faults:12d} {s.total_traffic_bytes / 1024:8.1f}KB "
                f"{'yes' if ok else 'NO -- BUG'}"
            )
            assert ok


if __name__ == "__main__":
    main()
