"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures.  The
heavy lifting (the run matrix) goes through ``repro.exec``: cells are
memoized in-process for the session and, when ``--repro-cache-dir`` is
given (or ``--repro-disk-cache`` enables the default location), served
from the content-addressed on-disk cache so a second benchmark session
re-simulates nothing.  ``--repro-jobs N`` fans uncached sweep cells out
over N worker processes; the engine's determinism guarantees the same
tables either way.  The pytest-benchmark timings still measure a single
representative simulation run per bench so the numbers stay meaningful.

Run with::

    pytest benchmarks/ --benchmark-only -s --repro-jobs 4

(``-s`` shows the regenerated tables.)
"""

from __future__ import annotations

import pytest

from repro.exec import ResultCache
from repro.harness import matrix
from repro.harness.matrix import clear_cache


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        default="default",
        choices=["tiny", "default", "full"],
        help="problem scale for the reproduction benches",
    )
    parser.addoption(
        "--repro-jobs",
        type=int,
        default=1,
        help="worker processes for uncached sweep cells",
    )
    parser.addoption(
        "--repro-cache-dir",
        default=None,
        help="on-disk result cache directory for the sweeps",
    )
    parser.addoption(
        "--repro-disk-cache",
        action="store_true",
        help="use the default on-disk result cache (~/.cache/repro-dsm)",
    )


@pytest.fixture(scope="session")
def scale(request):
    return request.config.getoption("--repro-scale")


@pytest.fixture(scope="session", autouse=True)
def _exec_engine(request):
    """Point every sweep of the session at the execution engine."""
    cache_dir = request.config.getoption("--repro-cache-dir")
    use_disk = request.config.getoption("--repro-disk-cache") or cache_dir
    matrix.configure(
        jobs=request.config.getoption("--repro-jobs"),
        cache=ResultCache(cache_dir) if use_disk else None,
    )
    yield
    matrix.configure(jobs=1, cache=None)
    clear_cache()


def emit(title: str, body: str) -> None:
    """Print a regenerated table under a clear banner."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
