"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures.  The
heavy lifting (the run matrix) happens once per session through the
module-level cache in ``repro.harness.matrix``; the pytest-benchmark
timings measure a single representative simulation run per bench so the
numbers stay meaningful.

Run with::

    pytest benchmarks/ --benchmark-only -s

(``-s`` shows the regenerated tables.)
"""

from __future__ import annotations

import pytest

from repro.harness.matrix import clear_cache


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        default="default",
        choices=["tiny", "default", "full"],
        help="problem scale for the reproduction benches",
    )


@pytest.fixture(scope="session")
def scale(request):
    return request.config.getoption("--repro-scale")


@pytest.fixture(scope="session", autouse=True)
def _fresh_cache():
    yield
    clear_cache()


def emit(title: str, body: str) -> None:
    """Print a regenerated table under a clear banner."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
