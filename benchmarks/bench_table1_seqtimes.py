"""Table 1: benchmarks, problem sizes, and sequential execution times.

Regenerates the table from the per-application compute-cost models at
the paper's full problem sizes and checks every entry within 5%.
"""

from conftest import emit
from repro.harness.calibration import TABLE1, table1_rows
from repro.harness.tables import fmt_table


def test_table1_sequential_times(benchmark):
    rows = []
    for app, size, paper_s, model_s, ratio in table1_rows():
        rows.append((app, size, f"{paper_s:.3f}", f"{model_s:.3f}", f"{ratio:.3f}"))
        assert abs(ratio - 1.0) < 0.05, (app, ratio)
    emit(
        "Table 1: problem sizes and sequential execution times (full scale)",
        fmt_table(
            ["Benchmark", "Problem Size", "Paper (s)", "Model (s)", "ratio"],
            rows,
        ),
    )
    benchmark.pedantic(table1_rows, rounds=5, iterations=1)
