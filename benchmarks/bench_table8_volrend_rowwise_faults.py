"""Table 8: Volrend-Rowwise fault counts.

Paper shape claim: HLRC at 4096 bytes needs far fewer read misses than
SC at 64 bytes (the paper reports 39x) -- whole-page fetches of image
rows versus fine-grained misses.
"""

from bench_faults_common import bench_one_run, collect_faults, emit_fault_table
from paperdata import VOLREND_ROWWISE_FAULTS


def test_table8_volrend_rowwise_faults(benchmark, scale):
    measured = collect_faults("volrend-rowwise", scale)
    emit_fault_table(
        "volrend-rowwise", measured, VOLREND_ROWWISE_FAULTS,
        "Table 8: Volrend-Rowwise fault counts",
    )
    sc64_reads = measured[("read", "sc")][0]
    hlrc4096_reads = measured[("read", "hlrc")][3]
    # Paper: 39x at full scale; prefetching of whole pages must cut
    # read misses by a large factor at any scale.
    assert sc64_reads > 2 * hlrc4096_reads, (sc64_reads, hlrc4096_reads)
    bench_one_run(benchmark, "volrend-rowwise", scale)
