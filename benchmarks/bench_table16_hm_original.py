"""Table 16: harmonic mean of relative efficiencies over the 8
original applications.

Checked shape claims (Section 5.5):
* fixing SC at 4096 bytes is the worst cell of the SC row (the paper's
  0.274 collapse);
* the HLRC row improves monotonically-ish toward coarse granularity
  and its 4096 cell is the best fixed (protocol, granularity) choice;
* per-application free choice (g_best) brings both SC and HLRC near
  the top (paper: 0.955 vs 0.956).
"""

from conftest import emit
from repro.apps import ORIGINAL_8
from repro.cluster.config import GRANULARITIES
from repro.harness.matrix import PROTOCOLS, SpeedupMatrix, sweep
from repro.harness.tables import hm_table_text
from repro.stats.relative_efficiency import hm_table

from bench_faults_common import bench_one_run
from paperdata import TABLE16


def test_table16_hm_original(benchmark, scale):
    results = sweep(ORIGINAL_8, scale=scale)
    hm = hm_table(SpeedupMatrix(results).speedups(), ORIGINAL_8, PROTOCOLS,
                  list(GRANULARITIES))
    paper_note = "paper: " + ", ".join(
        f"{p}-4096={TABLE16[p]['4096']:.3f}" for p in ("sc", "swlrc", "hlrc")
    )
    emit(
        "Table 16: HM of relative efficiency (original 8 applications)",
        hm_table_text(hm, "") + "\n" + paper_note,
    )
    # SC collapses at 4096; HLRC stays strong there.
    assert hm["sc"]["4096"] < hm["sc"]["256"], hm["sc"]
    assert hm["hlrc"]["4096"] > hm["sc"]["4096"], (hm["hlrc"], hm["sc"])
    # HLRC's best fixed granularity is coarse.
    assert max(hm["hlrc"], key=lambda k: hm["hlrc"][k] if k != "g_best" else 0) in (
        "1024", "4096",
    )
    # Free per-app granularity choice makes SC and HLRC comparable.
    assert abs(hm["sc"]["g_best"] - hm["hlrc"]["g_best"]) < 0.25
    bench_one_run(benchmark, "lu", scale)
