#!/usr/bin/env python
"""Run the simulator-core perf suite.

Thin wrapper over ``repro-dsm perf`` so the suite lives next to the
other benchmarks.  All flags pass through::

    python benchmarks/perf/run.py                     # measure + print
    python benchmarks/perf/run.py --against BENCH_simcore.json
    python benchmarks/perf/run.py --against BENCH_simcore.json --update

See docs/PERFORMANCE.md for what each micro measures and how to update
the committed baseline honestly.
"""

import sys

from repro.harness.cli import main

if __name__ == "__main__":
    raise SystemExit(main(["perf", *sys.argv[1:]]))
