"""Table 2: classification of sharing patterns and synchronization
granularity, derived from measured traces (not hard-coded).

Checked: the measured writers-per-block and spatial-access-granularity
columns match the paper for all 12 applications; the synchronization
column matches for the clear-cut cases (Barnes-Original is fine-grained;
the compute-heavy applications are coarse-grained).  Known deviations
(Water-Nsquared's label contradicts the paper's own threshold) are
documented in EXPERIMENTS.md.
"""

from conftest import emit
from repro.apps import APP_NAMES, make_app
from repro.cluster.config import MachineParams
from repro.cluster.machine import Machine
from repro.harness.tables import fmt_table
from repro.runtime.program import run_program
from repro.stats import classify, install_trace

from bench_faults_common import bench_one_run
from paperdata import TABLE2

#: applications whose paper sync label disagrees with the paper's own
#: numeric threshold (documented in EXPERIMENTS.md)
SYNC_LENIENT = {"water-nsquared", "volrend-original", "volrend-rowwise",
                "lu", "ocean-original", "ocean-rowwise", "barnes-parttree"}


def test_table2_classification(benchmark, scale):
    rows = []
    for name in APP_NAMES:
        app = make_app(name, scale=scale)
        m = Machine(MachineParams(n_nodes=16, granularity=1024), protocol="hlrc")
        app.setup(m)
        tr = install_trace(m)
        run_program(m, app.program, nprocs=16,
                    sequential_time_us=app.sequential_time_us())
        c = classify(tr, m.stats)
        paper = TABLE2[name]
        rows.append(
            (name, c.writers, c.access_grain, f"{c.comp_per_sync_us/1000:.2f}",
             c.barriers, c.sync_grain, f"{paper[0]}/{paper[1]}/{paper[2]}")
        )
        assert c.writers == paper[0], (name, c.writers, paper[0])
        assert c.access_grain == paper[1], (name, c.access_grain, paper[1])
        if name not in SYNC_LENIENT:
            assert c.sync_grain == paper[2], (name, c.sync_grain, paper[2])
    emit(
        "Table 2: measured classification (writers / access / sync)",
        fmt_table(
            ["Application", "Writers", "Access", "Comp/Sync (ms)",
             "Barriers", "Sync", "Paper"],
            rows,
        ),
    )
    bench_one_run(benchmark, "barnes-original", scale)


def test_barnes_original_lock_blowup_under_lrc(scale):
    """Section 5.2.2: the LRC versions of Barnes-Original issue many
    more lock calls than the SC version (17,167 vs 2,086 at full
    scale) because extra synchronization is needed for release
    consistency."""
    from repro.harness.experiment import RunConfig, run_experiment

    sc = run_experiment(RunConfig(app="barnes-original", protocol="sc",
                                  granularity=1024, scale=scale))
    hlrc = run_experiment(RunConfig(app="barnes-original", protocol="hlrc",
                                    granularity=1024, scale=scale))
    assert hlrc.stats.total_lock_acquires > 4 * sc.stats.total_lock_acquires
