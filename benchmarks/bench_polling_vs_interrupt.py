"""Section 5.4 analysis: the interaction between the notification
mechanism and false sharing.

Checked shape claims:
* for the false-sharing applications, interrupts *delay* invalidations
  while a node computes, letting it complete multiple local accesses
  before losing the block -- the total number of SC misses drops
  versus polling ("down to 4-70% of the polling case");
* SC is more sensitive to the mechanism than the LRC protocols.
"""

from conftest import emit
from repro.harness.experiment import RunConfig, run_experiment
from repro.harness.tables import fmt_table

from bench_faults_common import bench_one_run

APP = "ocean-rowwise"   # boundary false sharing with temporally spread writes


def test_interrupts_reduce_sc_ping_pong_misses(benchmark, scale):
    rows = []
    miss = {}
    for proto in ("sc", "swlrc", "hlrc"):
        for mech in ("polling", "interrupt"):
            r = run_experiment(RunConfig(app=APP, protocol=proto,
                                         granularity=4096, mechanism=mech,
                                         scale=scale))
            total = r.stats.read_faults + r.stats.write_faults
            miss[(proto, mech)] = total
            rows.append((proto.upper(), mech, r.stats.read_faults,
                         r.stats.write_faults, f"{r.speedup:.2f}"))
    emit(
        f"Section 5.4: mechanism vs misses ({APP} at 4096 bytes)",
        fmt_table(["Protocol", "Mechanism", "Read faults", "Write faults",
                   "Speedup"], rows),
    )
    # Interrupts reduce SC's total misses (delayed-invalidation effect;
    # the paper reports reductions to 4-70% of the polling count -- our
    # region-batched accesses damp the effect to a few percent, see
    # EXPERIMENTS.md).
    assert miss[("sc", "interrupt")] < miss[("sc", "polling")], miss
    # SC reacts more strongly to the mechanism than HLRC does.
    sc_ratio = miss[("sc", "interrupt")] / max(1, miss[("sc", "polling")])
    hlrc_ratio = miss[("hlrc", "interrupt")] / max(1, miss[("hlrc", "polling")])
    assert sc_ratio <= hlrc_ratio * 1.02, (sc_ratio, hlrc_ratio)
    bench_one_run(benchmark, APP, scale, protocol="sc", granularity=4096)
