"""Table 9: Volrend-Original fault counts.

Paper shape claim: "write-write false sharing on the image is not
eliminated even at 64-byte granularity, since the task size is made
quite small (4x4 pixels)" -- write faults persist at 64 bytes, and
HLRC reduces write misses by an order of magnitude at coarse grain.
"""

from bench_faults_common import bench_one_run, collect_faults, emit_fault_table


def test_table9_volrend_original_faults(benchmark, scale):
    measured = collect_faults("volrend-original", scale)
    emit_fault_table(
        "volrend-original", measured, None,
        "Table 9: Volrend-Original fault counts",
    )
    # False sharing persists at 64 bytes for SC.
    assert measured[("write", "sc")][0] > 0
    # HLRC cuts coarse-grain write misses versus SC.
    assert (
        measured[("write", "hlrc")][3] <= measured[("write", "sc")][3]
    )
    bench_one_run(benchmark, "volrend-original", scale)
