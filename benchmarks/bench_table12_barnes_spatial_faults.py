"""Table 12: Barnes-Spatial fault counts.

Paper shape claim: compared with HLRC at 4096 bytes, SC at 64 bytes
takes many more read misses (the paper reports 24x) -- the price of
losing prefetching on the scattered tree cells.
"""

from bench_faults_common import bench_one_run, collect_faults, emit_fault_table


def test_table12_barnes_spatial_faults(benchmark, scale):
    measured = collect_faults("barnes-spatial", scale)
    emit_fault_table(
        "barnes-spatial", measured, None, "Table 12: Barnes-Spatial fault counts"
    )
    sc64 = measured[("read", "sc")][0]
    hlrc4096 = measured[("read", "hlrc")][3]
    assert sc64 > 2 * hlrc4096, (sc64, hlrc4096)
    bench_one_run(benchmark, "barnes-spatial", scale)
