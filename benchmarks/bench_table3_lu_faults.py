"""Table 3: LU read/write faults per protocol and granularity.

Paper shape claims checked:
* read faults shrink ~4x per 4x granularity increase (prefetching of
  contiguous 2048-byte LU blocks);
* write faults are (essentially) zero at every granularity -- blocks
  are written by their owner before anyone reads them, and owners'
  blocks never share pages with other owners' blocks;
* all three protocols see the same read-fault profile (LU has no false
  sharing for the relaxed protocols to hide).
"""

from bench_faults_common import (
    assert_read_faults_decrease_with_granularity,
    bench_one_run,
    collect_faults,
    emit_fault_table,
)
from paperdata import LU_FAULTS


def test_table3_lu_faults(benchmark, scale):
    measured = collect_faults("lu", scale)
    emit_fault_table("lu", measured, LU_FAULTS, "Table 3: LU fault counts")
    assert_read_faults_decrease_with_granularity(measured, factor=4.0)
    for proto in ("sc", "swlrc", "hlrc"):
        writes = measured[("write", proto)]
        # near-zero: a handful of boundary artifacts at 4096 at most
        assert sum(writes[:3]) == 0, (proto, writes)
        assert writes[3] <= measured[("read", proto)][3], (proto, writes)
    # Same read profile across protocols (within 10%).
    for g_idx in range(4):
        vals = [measured[("read", p)][g_idx] for p in ("sc", "swlrc", "hlrc")]
        assert max(vals) <= 1.1 * min(vals), vals
    bench_one_run(benchmark, "lu", scale)
