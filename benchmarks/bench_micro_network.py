"""Section 3 microbenchmark: Myrinet message round-trip times.

Paper: "4-, 64-, 256-, 1K- and 4K-byte messages see round-trip times of
40, 61, 100, 256 and 876 us.  Large messages achieve bandwidths of
about 17 MB/sec."
"""

import pytest

from conftest import emit
from repro.cluster.config import MachineParams
from repro.harness.calibration import microbenchmark_rows
from repro.harness.tables import fmt_table
from repro.net.message import Message
from repro.net.myrinet import Network
from repro.sim.engine import Engine
from repro.stats.counters import Stats


def _simulated_round_trip(size: int) -> float:
    """Measure an actual request/reply pair through the network model."""
    eng = Engine()
    params = MachineParams()
    stats = Stats(params.n_nodes)
    done = []

    def deliver(msg):
        if msg.mtype == "ping":
            net.send(Message(src=msg.dst, dst=msg.src, mtype="pong",
                             size_bytes=size))
        else:
            done.append(eng.now)

    net = Network(eng, params, stats, deliver)
    net.send(Message(src=0, dst=1, mtype="ping", size_bytes=size))
    eng.run()
    return done[0]


def test_microbenchmark_table(benchmark):
    rows = []
    for size, paper_rt, model_rt, ratio in microbenchmark_rows():
        sim_rt = _simulated_round_trip(size)
        rows.append(
            (f"{size}B", f"{paper_rt:.0f}", f"{model_rt:.1f}", f"{sim_rt:.1f}",
             f"{ratio:.3f}")
        )
        # Shape claim: within 10% of the measured platform.
        assert abs(ratio - 1.0) < 0.10
    emit(
        "Section 3 microbenchmark: message round-trip times",
        fmt_table(
            ["Size", "Paper RT (us)", "Model RT (us)", "Simulated RT (us)",
             "model/paper"],
            rows,
        ),
    )
    benchmark.pedantic(
        lambda: _simulated_round_trip(4096), rounds=20, iterations=1
    )


def test_large_message_bandwidth(benchmark):
    p = MachineParams()
    bw_mb_s = 1.0 / p.nic_occupancy_per_byte_us
    emit(
        "Section 3 microbenchmark: streaming bandwidth",
        f"model NIC streaming bandwidth: {bw_mb_s:.1f} MB/s (paper: ~17 MB/s)",
    )
    assert 15.0 < bw_mb_s < 19.0
    benchmark.pedantic(lambda: p.one_way_latency_us(4096), rounds=50, iterations=100)
