"""Extension bench: eager vs lazy release consistency.

The paper's related work traces the lineage from eager release
consistency (Munin-style, [5]/[10]) to the lazy protocols it evaluates;
Keleher's comparison [16] found laziness worth ~34% over SC and the
eager variant in between.  This bench quantifies the eager/lazy
trade-off on our testbed model:

* ERC releases are expensive (diff flush + invalidate every cached
  copy, synchronously) but acquires are free of coherence work;
* HLRC releases only flush to the home; acquires pay for notices.

Expectation: for barrier-structured applications with wide read
sharing, ERC's invalidation storms at every release make it slower
than (or at best comparable to) HLRC, while its acquire-side economy
shows on lock-dominated Barnes-Original.
"""

from conftest import emit
from repro.cluster.config import GRANULARITIES
from repro.harness.experiment import RunConfig, run_experiment
from repro.harness.tables import fmt_table

from bench_faults_common import bench_one_run

APPS = ["ocean-rowwise", "volrend-original", "barnes-original"]


def test_erc_vs_hlrc(benchmark, scale):
    rows = []
    sp = {}
    for app in APPS:
        for proto in ("erc", "hlrc", "sc"):
            r = run_experiment(RunConfig(app=app, protocol=proto,
                                         granularity=4096, scale=scale))
            sp[(app, proto)] = r.speedup
            rows.append((
                app, proto.upper(), f"{r.speedup:.2f}",
                r.stats.read_faults + r.stats.write_faults,
                r.stats.invalidations,
                f"{r.stats.total_traffic_bytes / 1e6:.2f}",
            ))
    emit(
        "Extension: eager (ERC) vs lazy (HLRC) release consistency at 4096",
        fmt_table(
            ["Application", "Protocol", "Speedup", "Misses",
             "Invalidations", "Traffic (MB)"],
            rows,
        ),
    )
    # The relaxed protocols (either flavour) beat SC at page granularity
    # on the false-sharing applications...
    for app in ("ocean-rowwise", "volrend-original"):
        assert sp[(app, "erc")] > sp[(app, "sc")], app
        assert sp[(app, "hlrc")] > sp[(app, "sc")], app
    # ...and the eager/lazy trade-off lands where the synchronization
    # structure says it should: on barrier-structured or stealing
    # applications laziness is at least as good (HLRC >= ERC within a
    # few percent), while on lock-dominated Barnes-Original ERC's
    # notice-free acquires beat HLRC's -- the same frequency-of-
    # synchronization effect that makes SC competitive there.
    for app in ("ocean-rowwise", "volrend-original"):
        assert sp[(app, "hlrc")] >= 0.95 * sp[(app, "erc")], (
            app, sp[(app, "hlrc")], sp[(app, "erc")],
        )
    assert sp[("barnes-original", "erc")] > sp[("barnes-original", "hlrc")]
    bench_one_run(benchmark, "volrend-original", scale, protocol="erc",
                  granularity=4096)
