"""Reference numbers transcribed from the paper, used by the benches to
print paper-vs-measured comparisons and check shape claims.

Fault tables (Tables 3-13) give read/write fault counts per protocol at
granularities 64/256/1024/4096 (the paper's full problem sizes; some
cells are missing in the paper's text and appear as None).
"""

#: Table 3: LU
LU_FAULTS = {
    ("read", "sc"): [24654, 6297, 1574, 393],
    ("read", "swlrc"): [24655, 6297, 1574, 393],
    ("read", "hlrc"): [24655, 6297, 1574, 393],
    ("write", "sc"): [0, 0, 0, 0],
    ("write", "swlrc"): [0, 0, 0, 0],
    ("write", "hlrc"): [0, 0, 0, 0],
}

#: Table 4: Ocean-Rowwise (the paper's SW-LRC/HLRC rows list 3 values)
OCEAN_ROWWISE_FAULTS = {
    ("read", "sc"): [21803, 6960, 2593, 3901],
    ("read", "swlrc"): [5128, 1668, 781, None],
    ("read", "hlrc"): [5176, 1653, 759, None],
    ("write", "sc"): [4237, 1232, 392, 187],
    ("write", "swlrc"): [1542, 388, 194, None],
    ("write", "hlrc"): [1269, 368, 176, None],
}

#: Table 5: Ocean-Original
OCEAN_ORIGINAL_FAULTS = {
    ("read", "sc"): [92160, 27360, 11760, 7110],
    ("read", "swlrc"): [None, 27360, 11760, 7110],
    ("read", "hlrc"): [None, 27360, 11760, 7110],
    ("write", "sc"): [0, 0, 0, 0],
    ("write", "swlrc"): [0, 0, 0, 0],
    ("write", "hlrc"): [0, 0, 0, 0],
}

#: Table 7: Water-Nsquared
WATER_NSQUARED_FAULTS = {
    ("read", "sc"): [20487, None, None, None],
    ("read", "swlrc"): [22059, None, None, None],
    ("read", "hlrc"): [20489, None, None, None],
    ("write", "sc"): [8500, None, None, None],
    ("write", "swlrc"): [8791, None, None, None],
    ("write", "hlrc"): [8840, None, None, None],
}

#: Table 8: Volrend-Rowwise
VOLREND_ROWWISE_FAULTS = {
    ("read", "sc"): [786, None, None, None],
    ("read", "swlrc"): [805, None, None, None],
    ("read", "hlrc"): [800, None, None, None],
    ("write", "sc"): [45, None, None, None],
    ("write", "swlrc"): [50, None, None, None],
    ("write", "hlrc"): [33, None, None, None],
}

#: Table 2 rows: app -> (writers, access grain, sync grain, barriers)
TABLE2 = {
    "lu": ("single", "coarse", "coarse", 64),
    "ocean-rowwise": ("single", "coarse", "coarse", 323),
    "ocean-original": ("single", "fine", "coarse", 328),
    "fft": ("single", "fine", "coarse", 10),
    "water-nsquared": ("multiple", "coarse", "fine", 12),
    "volrend-rowwise": ("multiple", "fine", "coarse", 16),
    "volrend-original": ("multiple", "fine", "coarse", 16),
    "water-spatial": ("multiple", "fine", "coarse", 18),
    "raytrace": ("multiple", "fine", "coarse", 1),
    "barnes-spatial": ("multiple", "fine", "coarse", 12),
    "barnes-parttree": ("multiple", "fine", "coarse", 13),
    "barnes-original": ("multiple", "fine", "fine", 8),
}

#: Table 16: HM of RE over the original 8 applications
TABLE16 = {
    "sc": {"64": 0.753, "256": 0.837, "1024": 0.717, "4096": 0.274, "g_best": 0.955},
    "swlrc": {"64": 0.400, "256": 0.749, "1024": 0.293, "4096": 0.558, "g_best": 0.861},
    "hlrc": {"64": 0.388, "256": 0.758, "1024": 0.903, "4096": 0.927, "g_best": 0.956},
    "p_best": {"64": 0.775, "256": 0.895, "1024": 0.935, "4096": 0.539, "g_best": 1.0},
}

#: Table 17 p_best row (best implementation per combination)
TABLE17_P_BEST = {"64": 0.773, "256": 0.895, "1024": 0.935, "4096": 0.930}


def fault_rows_for(app_table, measured, granularities=(64, 256, 1024, 4096)):
    """Build printable rows combining paper values and measured ones.

    ``measured[(kind, protocol)] -> [values per granularity]``.
    """
    rows = []
    for kind in ("read", "write"):
        for proto in ("sc", "swlrc", "hlrc"):
            paper = app_table.get((kind, proto), [None] * 4) if app_table else None
            got = measured.get((kind, proto), [None] * 4)
            row = [kind.capitalize(), proto.upper()]
            for i in range(len(granularities)):
                pv = paper[i] if paper else None
                gv = got[i]
                row.append(
                    f"{gv if gv is not None else '-'}"
                    + (f" ({pv})" if pv is not None else "")
                )
            rows.append(row)
    return rows
