"""Shared machinery for the per-application fault-table benches
(Tables 3-13): run the app across the protocol x granularity matrix,
print measured fault counts next to the paper's, assert the shape
claims that are scale-independent.
"""

from __future__ import annotations

from typing import Dict, Optional

from conftest import emit
from repro.cluster.config import GRANULARITIES
from repro.harness.experiment import RunConfig
from repro.harness.matrix import PROTOCOLS, cached_run
from repro.harness.tables import fmt_table

from paperdata import fault_rows_for


def collect_faults(app: str, scale: str) -> Dict:
    """measured[(kind, protocol)] = [counts per granularity]."""
    measured: Dict = {}
    for proto in PROTOCOLS:
        reads, writes = [], []
        for g in GRANULARITIES:
            r = cached_run(RunConfig(app=app, protocol=proto, granularity=g,
                                     scale=scale))
            reads.append(r.stats.read_faults)
            writes.append(r.stats.write_faults)
        measured[("read", proto)] = reads
        measured[("write", proto)] = writes
    return measured


def emit_fault_table(app: str, measured: Dict, paper_table: Optional[dict],
                     title: str) -> None:
    rows = fault_rows_for(paper_table, measured)
    emit(
        title,
        fmt_table(
            ["Fault", "Protocol"] + [f"{g}" for g in GRANULARITIES],
            rows,
            "measured (paper value in parentheses; paper counts are at "
            "full problem size)",
        ),
    )


def assert_read_faults_decrease_with_granularity(measured, protocols=PROTOCOLS,
                                                 factor=1.5):
    """Coarser blocks mean fewer read faults (prefetching) for
    contiguous-access applications."""
    for proto in protocols:
        reads = measured[("read", proto)]
        assert reads[0] > factor * reads[-1], (proto, reads)


def bench_one_run(benchmark, app: str, scale: str, protocol="hlrc",
                  granularity=4096):
    """Benchmark a single representative simulation run."""
    from repro.harness.experiment import run_experiment

    benchmark.pedantic(
        lambda: run_experiment(
            RunConfig(app=app, protocol=protocol, granularity=granularity,
                      scale="tiny")
        ),
        rounds=3,
        iterations=1,
    )
