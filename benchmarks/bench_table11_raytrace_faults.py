"""Table 11: Raytrace fault counts.

Paper context: scene reads are read-only (cold replication); the
interesting faults come from task stealing and fine-grained image
writes, which false-share at coarse granularity under SC.
"""

from bench_faults_common import bench_one_run, collect_faults, emit_fault_table


def test_table11_raytrace_faults(benchmark, scale):
    measured = collect_faults("raytrace", scale)
    emit_fault_table("raytrace", measured, None, "Table 11: Raytrace fault counts")
    # HLRC eliminates most write-write false sharing at page grain.
    assert measured[("write", "hlrc")][3] <= measured[("write", "sc")][3]
    # Cold scene replication: read faults exist at all granularities.
    for proto in ("sc", "swlrc", "hlrc"):
        assert all(v > 0 for v in measured[("read", proto)]), proto
    bench_one_run(benchmark, "raytrace", scale)
