"""Robustness bench: how the granularity preference moves with the
platform's cost constants.

Two sweeps on LU under SC (the cleanest single-writer prefetching
case):

* **fault exception cost up** (5 us -> 80 us, toward SVM): coarse
  blocks take ~4x fewer faults, so their relative advantage must grow
  monotonically -- the cost-structure reason page-based SVM systems
  use pages.
* **per-byte network cost up** (x1 -> x4): coarse blocks move 64x the
  bytes per miss, so their advantage must shrink -- the reason
  hardware DSMs with fast links use cache lines.

The paper's platform sits in between, which is exactly why it finds no
single best combination.
"""

from conftest import emit
from repro.analysis import granularity_preference, sweep_parameter
from repro.harness.tables import fmt_table

from bench_faults_common import bench_one_run


def _emit_sweep(title, points, ratios):
    rows = [
        (f"x{p.multiplier:g}", f"{p.value:.3g}",
         f"{p.speedups[64]:.2f}", f"{p.speedups[4096]:.2f}", f"{r:.2f}")
        for p, r in zip(points, ratios)
    ]
    emit(title, fmt_table(
        ["scale", "value (us)", "speedup @64B", "speedup @4096B",
         "4096/64 ratio"],
        rows,
    ))


def test_fault_cost_pushes_toward_coarse_blocks(benchmark, scale):
    points = sweep_parameter(
        app="lu", field="fault_exception_us",
        multipliers=[1, 4, 16], protocol="sc",
        granularities=[64, 4096], scale=scale,
    )
    ratios = granularity_preference(points, fine=64, coarse=4096)
    _emit_sweep(
        "Sensitivity: access-fault cost vs granularity preference (LU, SC)",
        points, ratios,
    )
    assert ratios == sorted(ratios), ratios  # monotonically toward coarse
    assert ratios[-1] > ratios[0] * 1.2
    bench_one_run(benchmark, "lu", scale)


def test_network_byte_cost_pushes_toward_fine_blocks(benchmark, scale):
    points = sweep_parameter(
        app="lu", field="net_per_byte_us",
        multipliers=[0.25, 1, 4], protocol="sc",
        granularities=[64, 4096], scale=scale,
    )
    ratios = granularity_preference(points, fine=64, coarse=4096)
    _emit_sweep(
        "Sensitivity: per-byte network cost vs granularity preference (LU, SC)",
        points, ratios,
    )
    assert ratios == sorted(ratios, reverse=True), ratios
    assert ratios[0] > ratios[-1] * 1.05
    bench_one_run(benchmark, "lu", scale)
