"""Ablation benches for the design decisions DESIGN.md calls out.

1. First-touch home migration vs purely static homes: migration
   reduces remote traffic for partition-affine applications.
2. Eager-ack HLRC releases: the blocking diff flush is what makes
   HLRC synchronization expensive (Barnes-Original effect); measure
   how much of the release time it accounts for.
3. Write-notice run-length compression: contiguous-writer applications
   (Ocean) depend on it; scattered-writer applications (Barnes) see
   no benefit.
"""

from conftest import emit
from repro.core.timestamps import IntervalLog, WriteNotice
from repro.harness.experiment import RunConfig, run_experiment
from repro.harness.tables import fmt_table

from bench_faults_common import bench_one_run


def test_ablation_first_touch_placement(benchmark, scale):
    """Compare an application with its natural placement against one
    with every segment placed on node 0 (no first-touch layout)."""
    import repro.apps  # noqa: F401  (registry)
    from repro.apps import make_app
    from repro.cluster.config import MachineParams
    from repro.cluster.machine import Machine
    from repro.runtime.program import run_program

    def run(placement_all_zero: bool):
        app = make_app("ocean-rowwise", scale=scale)
        m = Machine(MachineParams(n_nodes=16, granularity=1024),
                    protocol="hlrc", poll_dilation=app.poll_dilation)
        if placement_all_zero:
            orig_place = m.place
            m.place = lambda addr, size, node: orig_place(addr, size, 0)
        app.setup(m)
        r = run_program(m, app.program, nprocs=16,
                        sequential_time_us=app.sequential_time_us())
        return r.stats

    natural = run(False)
    node0 = run(True)
    emit(
        "Ablation: first-touch placement vs all-on-node-0 (ocean-rowwise, HLRC-1024)",
        fmt_table(
            ["Placement", "Speedup", "Read faults", "Traffic (MB)"],
            [
                ("first-touch", f"{natural.speedup:.2f}", natural.read_faults,
                 f"{natural.total_traffic_bytes/1e6:.2f}"),
                ("all node 0", f"{node0.speedup:.2f}", node0.read_faults,
                 f"{node0.total_traffic_bytes/1e6:.2f}"),
            ],
        ),
    )
    assert natural.speedup > node0.speedup
    assert natural.total_traffic_bytes < node0.total_traffic_bytes
    bench_one_run(benchmark, "ocean-rowwise", scale)


def test_ablation_notice_compression(benchmark):
    """Contiguous notices compress to a few runs; scattered ones don't."""
    contiguous = [WriteNotice(b, 1, 0) for b in range(100)]
    scattered = [WriteNotice(b * 37 % 1009, 1, 0) for b in range(100)]
    c_runs = IntervalLog.compressed_count(contiguous)
    s_runs = IntervalLog.compressed_count(scattered)
    emit(
        "Ablation: write-notice run-length compression",
        f"contiguous 100 notices -> {c_runs} run(s); "
        f"scattered 100 notices -> {s_runs} runs",
    )
    assert c_runs == 1
    assert s_runs > 50
    benchmark.pedantic(
        lambda: IntervalLog.compressed_count(scattered), rounds=20, iterations=10
    )


def test_ablation_hlrc_release_cost_vs_sync_frequency(benchmark, scale):
    """The HLRC release (diff + flush + ack) is what high-frequency
    synchronization multiplies: Barnes-Original spends far more of its
    time in locks under HLRC than under SC."""
    sc = run_experiment(RunConfig(app="barnes-original", protocol="sc",
                                  granularity=4096, scale=scale))
    hlrc = run_experiment(RunConfig(app="barnes-original", protocol="hlrc",
                                    granularity=4096, scale=scale))
    sc_lock = sum(n.lock_wait_us for n in sc.stats.nodes)
    hlrc_lock = sum(n.lock_wait_us for n in hlrc.stats.nodes)
    emit(
        "Ablation: synchronization cost, Barnes-Original at 4096",
        f"SC lock wait {sc_lock/1e3:.1f} ms over {sc.stats.total_lock_acquires} locks; "
        f"HLRC lock wait {hlrc_lock/1e3:.1f} ms over {hlrc.stats.total_lock_acquires} locks",
    )
    assert hlrc_lock > sc_lock
    bench_one_run(benchmark, "barnes-original", scale)
