"""Table 13: Barnes-Original fault counts.

Paper shape claims (Section 5.2.2): at equal granularity the relaxed
protocols take fewer read misses (the paper: 4x fewer) and fewer write
misses than SC -- yet still lose overall because of synchronization
frequency (checked in the speedup benches, not here).
"""

from bench_faults_common import bench_one_run, collect_faults, emit_fault_table


def test_table13_barnes_original_faults(benchmark, scale):
    measured = collect_faults("barnes-original", scale)
    emit_fault_table(
        "barnes-original", measured, None, "Table 13: Barnes-Original fault counts"
    )
    # (Paper: 4x fewer reads for the LRC protocols; our region-batched
    # access model narrows this to near-parity -- see EXPERIMENTS.md.)
    assert measured[("read", "hlrc")][3] <= 1.15 * measured[("read", "sc")][3]
    # HLRC write-protects at every release, so with one interval per
    # (frequent) lock its re-faults keep it near SC's write-miss count
    # (within 15%) rather than below it -- see EXPERIMENTS.md.
    assert measured[("write", "hlrc")][3] <= 1.15 * measured[("write", "sc")][3]
    bench_one_run(benchmark, "barnes-original", scale)
