"""Extension benches: the experiments the paper lists as future work in
its Section 7 ("Our study has several limitations ...").

1. **Delayed consistency** -- "we have also not examined delayed
   consistency protocols": the ``dc`` protocol (SC + receiver-side
   bounded invalidation deferral) against SC on a false-sharing app.
2. **Block sizes greater than 4,096 bytes** -- sweep 8192/16384 and
   show the fragmentation/prefetch trade-off past the page size.
3. **32-node runs** -- the testbed footnote's hoped-for configuration.
4. **All-software SVM** -- "all these performance differences would be
   larger on real SVM systems, where the overheads of access
   violations are higher": the SC-vs-HLRC gap at page granularity must
   widen under SVM fault costs.
5. **Memory utilization** -- "we have not examined the memory
   utilization of different protocol and granularity combinations".
"""

from conftest import emit
from repro.apps import make_app
from repro.cluster.config import (
    EXTENDED_GRANULARITIES,
    GRANULARITIES,
    MachineParams,
)
from repro.cluster.machine import Machine
from repro.harness.experiment import RunConfig, run_experiment
from repro.harness.tables import fmt_table
from repro.runtime.program import run_program
from repro.stats.counters import memory_utilization

from bench_faults_common import bench_one_run


def _run(app_name, scale, protocol, granularity, params=None, mechanism=None):
    app = make_app(app_name, scale=scale)
    if params is None:
        kwargs = {"n_nodes": 16, "granularity": granularity}
        params = MachineParams(**kwargs)
    if mechanism is not None:
        params.mechanism = mechanism
    m = Machine(params, protocol=protocol, poll_dilation=app.poll_dilation)
    app.setup(m)
    r = run_program(m, app.program, nprocs=params.n_nodes,
                    sequential_time_us=app.sequential_time_us())
    return m, r


def test_ext_delayed_consistency(benchmark, scale):
    rows = []
    speed = {}
    for proto in ("sc", "dc"):
        m, r = _run("ocean-rowwise", scale, proto, 4096)
        speed[proto] = r.speedup
        misses = r.stats.read_faults + r.stats.write_faults
        delayed = getattr(m.protocol, "delayed_actions", 0)
        rows.append((proto.upper(), f"{r.speedup:.2f}", misses, delayed))
    emit(
        "Extension: delayed consistency (ocean-rowwise at 4096 bytes)",
        fmt_table(["Protocol", "Speedup", "Misses", "Deferred actions"], rows),
    )
    # Delaying invalidations must not hurt, and must actually defer.
    assert speed["dc"] >= 0.95 * speed["sc"]
    bench_one_run(benchmark, "ocean-rowwise", scale, protocol="dc",
                  granularity=4096)


def test_ext_block_sizes_beyond_page(benchmark, scale):
    rows = []
    sp = {}
    for g in list(GRANULARITIES[2:]) + list(EXTENDED_GRANULARITIES):
        _, r = _run("ocean-original", scale, "hlrc", g)
        sp[g] = r.speedup
        rows.append((g, f"{r.speedup:.2f}", r.stats.read_faults,
                     f"{r.stats.data_traffic_bytes / 1e6:.1f}"))
    emit(
        "Extension: block sizes beyond 4096 (ocean-original, HLRC)",
        fmt_table(["Block", "Speedup", "Read faults", "Data (MB)"], rows),
    )
    # Fine-grained column reads: bigger blocks keep cutting the miss
    # count but the per-miss transfer doubles -- fragmentation traffic
    # keeps growing past the page size.
    assert sp[16384] < max(sp.values()) * 1.05
    bench_one_run(benchmark, "ocean-original", scale, granularity=4096)


def test_ext_32_nodes(benchmark, scale):
    rows = []
    speeds = {}
    for n in (16, 32):
        app = make_app("water-nsquared", scale=scale)
        params = MachineParams(n_nodes=n, granularity=4096)
        m = Machine(params, protocol="hlrc", poll_dilation=app.poll_dilation)
        app.setup(m)
        r = run_program(m, app.program, nprocs=n,
                        sequential_time_us=app.sequential_time_us())
        speeds[n] = r.stats.speedup
        rows.append((n, f"{r.stats.speedup:.2f}",
                     r.stats.read_faults + r.stats.write_faults))
    emit(
        "Extension: 32-node run (water-nsquared, HLRC-4096)",
        fmt_table(["Nodes", "Speedup", "Misses"], rows),
    )
    # More nodes still help (the problem has headroom at this scale) --
    # but sublinearly.
    assert speeds[32] > speeds[16] * 0.9
    assert speeds[32] < 2.0 * speeds[16]
    bench_one_run(benchmark, "water-nsquared", scale)


def test_ext_all_software_svm(benchmark, scale):
    """SC vs HLRC at page granularity under SVM fault costs.

    The paper predicts the protocol differences "would be larger on
    real SVM systems, where the overheads of access violations are
    higher".  In our cost structure the 4096-byte transfer time
    (~880 us) dwarfs even the SVM fault exception (~100 us), so the
    *relative* HLRC/SC gap barely moves; what the bench pins down is
    that (a) everything gets slower under SVM costs, (b) the gap does
    not shrink materially, and (c) the absolute fault-overhead added is
    proportional to each protocol's miss count -- i.e. SC pays more
    extra stall time than HLRC does.
    """
    gaps = {}
    rows = {}
    stalls = {}
    for label, maker in (
        ("typhoon-0", lambda: MachineParams(n_nodes=16, granularity=4096)),
        ("all-software SVM", lambda: MachineParams.svm(n_nodes=16)),
    ):
        sp = {}
        for proto in ("sc", "hlrc"):
            _, r = _run("volrend-original", scale, proto, 4096,
                        params=maker())
            sp[proto] = r.speedup
            stalls[(label, proto)] = r.stats.parallel_time_us
        gaps[label] = sp["hlrc"] / sp["sc"]
        rows[label] = (label, f"{sp['sc']:.2f}", f"{sp['hlrc']:.2f}",
                       f"{gaps[label]:.2f}x")
    emit(
        "Extension: hardware vs all-software access control "
        "(volrend-original at 4096)",
        fmt_table(["Access control", "SC", "HLRC", "HLRC/SC"],
                  list(rows.values())),
    )
    # SVM costs must not erase the HLRC advantage (within 10%).  The
    # per-run absolute times move by well under 1% (the 4 KB transfer
    # dominates the fault exception), and at that magnitude the
    # cost-induced reshuffling of task-steal schedules adds comparable
    # noise, so absolute-time assertions would be brittle -- the gap
    # survival is the robust claim.
    assert gaps["all-software SVM"] > 0.9 * gaps["typhoon-0"]
    for proto in ("sc", "hlrc"):
        assert stalls[("all-software SVM", proto)] >= 0.98 * stalls[
            ("typhoon-0", proto)
        ]
    bench_one_run(benchmark, "volrend-original", scale)


def test_ext_memory_utilization(benchmark, scale):
    rows = []
    repl = {}
    for proto in ("sc", "swlrc", "hlrc"):
        for g in (64, 4096):
            m, r = _run("water-spatial", scale, proto, g)
            util = memory_utilization(m)
            repl[(proto, g)] = util["replication_factor"]
            rows.append((
                proto.upper(), g,
                f"{util['cached_bytes'] / 1e6:.2f}",
                f"{util['twin_bytes'] / 1e3:.1f}",
                f"{util['replication_factor']:.2f}",
            ))
    emit(
        "Extension: memory utilization (water-spatial)",
        fmt_table(
            ["Protocol", "Block", "Cached (MB)", "Twins (KB)", "Replication"],
            rows,
        ),
    )
    # Coarse blocks replicate more bytes (whole pages pulled for fine
    # reads).
    for proto in ("sc", "swlrc", "hlrc"):
        assert repl[(proto, 4096)] >= repl[(proto, 64)] * 0.8
    bench_one_run(benchmark, "water-spatial", scale)


def test_ext_time_breakdown(benchmark, scale):
    """Where the time goes: Barnes-Original spends its HLRC time in
    locks (the Section 5.2.2 story), LU in compute."""
    from repro.stats.breakdown import breakdown, breakdown_table

    rows = []
    bds = {}
    for app_name, proto, g in (
        ("lu", "sc", 1024),
        ("barnes-original", "sc", 4096),
        ("barnes-original", "hlrc", 4096),
    ):
        _, r = _run(app_name, scale, proto, g)
        bd = breakdown(r.stats)
        bds[(app_name, proto)] = bd
        rows.append((f"{app_name}/{proto}-{g}", bd))
    emit("Extension: execution-time breakdown", breakdown_table(rows))
    assert bds[("lu", "sc")].dominant() == "compute"
    # Barnes-Original loses more time to locks under HLRC than SC.
    assert (
        bds[("barnes-original", "hlrc")]["lock"]
        > bds[("barnes-original", "sc")]["lock"]
    )
    bench_one_run(benchmark, "lu", scale)
