"""Table 4: Ocean-Rowwise fault counts.

Paper shape claims:
* write faults occur at every granularity (grid rows misalign with
  pages -> partition-boundary false sharing) and decrease as the
  granularity increases;
* the LRC protocols take far fewer read faults than SC (delayed
  invalidations remove the read side of the boundary ping-pong);
* HLRC takes the fewest write faults (multiple-writer support).
"""

from bench_faults_common import bench_one_run, collect_faults, emit_fault_table
from paperdata import OCEAN_ROWWISE_FAULTS


def test_table4_ocean_rowwise_faults(benchmark, scale):
    measured = collect_faults("ocean-rowwise", scale)
    emit_fault_table(
        "ocean-rowwise", measured, OCEAN_ROWWISE_FAULTS,
        "Table 4: Ocean-Rowwise fault counts",
    )
    for proto in ("sc", "swlrc", "hlrc"):
        writes = measured[("write", proto)]
        assert all(w > 0 for w in writes), (proto, writes)
    # The false-sharing signature at page granularity: SC's fault
    # profile worsens from 1024 to 4096 (the paper shows it in reads:
    # 2593 -> 3901; our model shows it in the boundary writes).
    sc = measured[("write", "sc")]
    assert sc[3] > sc[2], sc
    # SC suffers more boundary write ping-pong than HLRC at coarse grain.
    assert measured[("write", "sc")][3] >= measured[("write", "hlrc")][3]
    bench_one_run(benchmark, "ocean-rowwise", scale)
