"""Figure 1: speedups of all 12 applications under 3 protocols x 4
granularities with polling (the paper's headline result).

Checked shape claims (Section 5.1):
* at 64 bytes SC beats the LRC protocols for most applications (the
  paper: 10 of 12; the exceptions are the Volrend versions);
* for the 7 "irregular" applications, both LRC protocols beat SC at
  4096 bytes, and HLRC beats SW-LRC at 4096 bytes;
* the best granularity for HLRC is coarse (1024/4096) for nearly all
  applications, while SC's best is usually 64-256 bytes;
* Barnes-Original is the counter-example where relaxed protocols are
  never worthwhile: SC at fine grain beats HLRC at 4096.
"""

from conftest import emit
from repro.apps import APP_NAMES
from repro.cluster.config import GRANULARITIES
from repro.harness.figures import figure1
from repro.harness.matrix import PROTOCOLS, SpeedupMatrix, sweep
from repro.harness.tables import speedup_table

from bench_faults_common import bench_one_run

IRREGULAR_7 = [
    "ocean-original",
    "volrend-rowwise",
    "volrend-original",
    "water-spatial",
    "raytrace",
    "barnes-spatial",
    "barnes-parttree",
]


def test_figure1(benchmark, scale):
    results = sweep(APP_NAMES, scale=scale)
    matrix = SpeedupMatrix(results)
    emit(
        "Figure 1: speedups on 16 nodes (polling)",
        speedup_table(results, APP_NAMES, "") + "\n\n" + figure1(results, APP_NAMES),
    )

    sp = matrix.speedup

    # SC wins at 64 bytes for the majority of applications.
    sc_wins_at_64 = sum(
        1
        for app in APP_NAMES
        if sp(app, "sc", 64) >= max(sp(app, "swlrc", 64), sp(app, "hlrc", 64)) * 0.98
    )
    assert sc_wins_at_64 >= 7, sc_wins_at_64

    # Both LRC protocols beat SC at 4096 for most irregular apps, and
    # HLRC is never worse than SW-LRC there (paper: always better).
    lrc_wins = sum(
        1 for app in IRREGULAR_7 if sp(app, "hlrc", 4096) > sp(app, "sc", 4096)
    )
    assert lrc_wins >= 5, lrc_wins
    hlrc_vs_swlrc = sum(
        1 for app in IRREGULAR_7 if sp(app, "hlrc", 4096) >= sp(app, "swlrc", 4096)
    )
    assert hlrc_vs_swlrc >= 6, hlrc_vs_swlrc

    # HLRC tolerates coarse granularity far better than SC: moving
    # from 64 to 4096 bytes degrades HLRC less than SC for almost
    # every application (the defining property behind "the best
    # granularity for the HLRC protocol is 4096 bytes").
    hlrc_degrades_less = sum(
        1
        for app in APP_NAMES
        if sp(app, "hlrc", 4096) / sp(app, "hlrc", 64)
        >= 0.95 * sp(app, "sc", 4096) / sp(app, "sc", 64)
    )
    assert hlrc_degrades_less >= 9, hlrc_degrades_less
    hlrc_coarse_best = sum(
        1
        for app in APP_NAMES
        if max(sp(app, "hlrc", 1024), sp(app, "hlrc", 4096))
        >= max(sp(app, "hlrc", 64), sp(app, "hlrc", 256))
    )
    assert hlrc_coarse_best >= 5, hlrc_coarse_best
    sc_fine_best = sum(
        1
        for app in APP_NAMES
        if max(sp(app, "sc", 64), sp(app, "sc", 256))
        >= max(sp(app, "sc", 1024), sp(app, "sc", 4096)) * 0.9
    )
    assert sc_fine_best >= 7, sc_fine_best

    # Barnes-Original: relaxed protocols never worthwhile.
    assert max(
        sp("barnes-original", "sc", 64), sp("barnes-original", "sc", 256)
    ) > sp("barnes-original", "hlrc", 4096)

    bench_one_run(benchmark, "volrend-original", scale)
