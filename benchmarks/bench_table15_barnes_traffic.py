"""Table 15 (Section 5.2.2): Barnes-Original data traffic.

Paper shape claims:
* HLRC at 4096 bytes moves far more data than SC at 64 bytes (the
  paper: 25x) -- fragmentation survives relaxed protocols;
* SW-LRC at 4096 bytes moves roughly twice HLRC's traffic (whole-block
  ownership migration versus diffs).
"""

from conftest import emit
from repro.cluster.config import GRANULARITIES
from repro.harness.experiment import RunConfig
from repro.harness.matrix import PROTOCOLS, cached_run
from repro.harness.tables import fmt_table

from bench_faults_common import bench_one_run


def test_table15_barnes_traffic(benchmark, scale):
    traffic = {}
    rows = []
    for proto in PROTOCOLS:
        row = [proto.upper()]
        for g in GRANULARITIES:
            r = cached_run(RunConfig(app="barnes-original", protocol=proto,
                                     granularity=g, scale=scale))
            traffic[(proto, g)] = r.stats.data_traffic_bytes
            row.append(f"{r.stats.data_traffic_bytes / 1e6:.2f}")
        rows.append(row)
    emit(
        "Table 15: Barnes-Original data traffic (MB)",
        fmt_table(["Protocol"] + [f"{g}B blocks" for g in GRANULARITIES], rows),
    )
    # Fragmentation at page granularity: HLRC-4096 moves much more than
    # SC-64.
    assert traffic[("hlrc", 4096)] > 3 * traffic[("sc", 64)]
    # Single-writer migration moves at least as much data as diffs at
    # page grain (the paper reports ~2x for Barnes; the gap is widest
    # where writers alternate within an interval -- see the volrend
    # check below).
    assert traffic[("swlrc", 4096)] >= traffic[("hlrc", 4096)]
    # Volrend-Original: unsynchronized write-write false sharing makes
    # SW-LRC ping-pong whole pages where HLRC keeps concurrent dirty
    # copies and ships only diffs.
    v_sw = cached_run(RunConfig(app="volrend-original", protocol="swlrc",
                                granularity=4096, scale=scale))
    v_hl = cached_run(RunConfig(app="volrend-original", protocol="hlrc",
                                granularity=4096, scale=scale))
    assert (
        v_sw.stats.data_traffic_bytes > 1.5 * v_hl.stats.data_traffic_bytes
    ), (v_sw.stats.data_traffic_bytes, v_hl.stats.data_traffic_bytes)
    bench_one_run(benchmark, "barnes-original", scale)
