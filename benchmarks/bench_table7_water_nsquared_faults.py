"""Table 7: Water-Nsquared fault counts.

Paper shape claims:
* with 4096-byte blocks the LRC protocols take fewer read misses than
  SC (relaxed consistency removes read-side invalidation misses of the
  migratory molecule updates);
* substantial write faults at all granularities (migratory
  multiple-writer pattern).
"""

from bench_faults_common import bench_one_run, collect_faults, emit_fault_table
from paperdata import WATER_NSQUARED_FAULTS


def test_table7_water_nsquared_faults(benchmark, scale):
    measured = collect_faults("water-nsquared", scale)
    emit_fault_table(
        "water-nsquared", measured, WATER_NSQUARED_FAULTS,
        "Table 7: Water-Nsquared fault counts",
    )
    for proto in ("sc", "swlrc", "hlrc"):
        assert sum(measured[("write", proto)]) > 0, proto
    # Paper: LRC protocols see fewer read misses than SC at 4096; our
    # region-batched accesses make the gap small, so assert parity
    # within 15% (deviation documented in EXPERIMENTS.md).
    assert (
        measured[("read", "hlrc")][3] <= 1.15 * measured[("read", "sc")][3]
    ), "LRC read misses should not exceed SC's at page granularity"
    bench_one_run(benchmark, "water-nsquared", scale)
