"""Table 5: Ocean-Original fault counts.

Paper shape claims:
* zero write faults at all granularities and protocols (contiguous 4-d
  subgrid allocation -> single writer per page, all writes home-local);
* read faults dominated by the fine-grained column-border reads, so
  they do NOT shrink proportionally with granularity (8-byte reads
  fetch a whole block whatever its size: fragmentation 88-99%).
"""

from bench_faults_common import bench_one_run, collect_faults, emit_fault_table
from paperdata import OCEAN_ORIGINAL_FAULTS


def test_table5_ocean_original_faults(benchmark, scale):
    measured = collect_faults("ocean-original", scale)
    emit_fault_table(
        "ocean-original", measured, OCEAN_ORIGINAL_FAULTS,
        "Table 5: Ocean-Original fault counts",
    )
    for proto in ("sc", "swlrc", "hlrc"):
        assert sum(measured[("write", proto)]) == 0, proto
        reads = measured[("read", proto)]
        # Column reads stay fine-grained: going 64 -> 4096 (64x) cuts
        # read faults far less than 64x.
        assert reads[0] < 30 * reads[3], (proto, reads)
    bench_one_run(benchmark, "ocean-original", scale)


def test_ocean_original_fragmentation(scale):
    """Section 5.2.2: >88% of the fetched bytes are useless at 64 B and
    >99% at 4096 B for the 8-byte column-border reads."""
    from repro.memory.blocks import BlockSpace

    assert BlockSpace(64).fragmentation(8, 1) > 0.85
    assert BlockSpace(4096).fragmentation(8, 1) > 0.99
