"""Figure 2: LU and Water-Nsquared speedups with the interrupt
mechanism.

Checked shape claim (Section 5.4): for coarse-grain applications that
send few messages (LU, Water-Nsquared), interrupts beat polling --
LU at 4096 bytes by 44-66% in the paper (polling instrumentation
dilates LU's compute by 55% uniprocessor).
"""

from conftest import emit
from repro.harness.figures import mechanism_comparison
from repro.harness.matrix import sweep

from bench_faults_common import bench_one_run

APPS = ["lu", "water-nsquared"]


def test_figure2_interrupt_speedups(benchmark, scale):
    polling = sweep(APPS, scale=scale, mechanism="polling")
    interrupt = sweep(APPS, scale=scale, mechanism="interrupt")
    body = "\n\n".join(
        mechanism_comparison(polling, interrupt, app) for app in APPS
    )
    emit("Figure 2: polling vs interrupt (LU, Water-Nsquared)", body)

    def sp(results, app, proto, g):
        for c, r in results.items():
            if (c.app, c.protocol, c.granularity) == (app, proto, g):
                return r.speedup
        raise KeyError

    # LU at 4096: interrupts significantly better than polling.
    for proto in ("sc", "swlrc", "hlrc"):
        p = sp(polling, "lu", proto, 4096)
        i = sp(interrupt, "lu", proto, 4096)
        assert i > 1.2 * p, (proto, p, i)
    bench_one_run(benchmark, "lu", scale, protocol="sc", granularity=4096)
