"""Table 17: HM of relative efficiencies choosing the best
implementation (version) of each application per combination.

Checked shape claim (Section 5.5): including the restructured versions
shifts the balance toward relaxed protocols and coarse granularity --
the HLRC-4096 cell improves versus Table 16's, and coarse granularities
dominate fine ones for the best-protocol row.
"""

from conftest import emit
from repro.apps import APP_NAMES, VERSION_GROUPS
from repro.cluster.config import GRANULARITIES
from repro.harness.matrix import PROTOCOLS, SpeedupMatrix, sweep
from repro.harness.tables import hm_table_text
from repro.stats.relative_efficiency import best_version_speedups, hm_table

from bench_faults_common import bench_one_run


def test_table17_hm_best_versions(benchmark, scale):
    results = sweep(APP_NAMES, scale=scale)
    speedups = best_version_speedups(
        SpeedupMatrix(results).speedups(), VERSION_GROUPS, PROTOCOLS,
        list(GRANULARITIES),
    )
    apps = list(VERSION_GROUPS)
    hm = hm_table(speedups, apps, PROTOCOLS, list(GRANULARITIES))
    emit(
        "Table 17: HM of relative efficiency (best version per combination)",
        hm_table_text(hm, "")
        + "\npaper: HLRC row 0.388/0.758/0.903/0.927, p_best g_best = 1.0",
    )
    # Best-version HLRC at coarse grain stays the strongest fixed cell.
    assert hm["hlrc"]["4096"] >= hm["sc"]["4096"]
    # Coarse granularities beat 64 bytes for the best-protocol row.
    assert hm["p_best"]["1024"] >= hm["p_best"]["64"] * 0.9
    # By construction the diagonal of free choices is 1.
    assert hm["p_best"]["g_best"] == 1.0
    bench_one_run(benchmark, "ocean-rowwise", scale)
