"""Table 10: Water-Spatial fault counts.

Paper shape claims:
* SW-LRC takes roughly an order of magnitude fewer read misses than SC
  at page granularity (delayed invalidation removes read-write false
  sharing);
* HLRC cuts write misses versus SC/SW-LRC at coarse granularities
  (multiple-writer support).
"""

from bench_faults_common import bench_one_run, collect_faults, emit_fault_table


def test_table10_water_spatial_faults(benchmark, scale):
    measured = collect_faults("water-spatial", scale)
    emit_fault_table(
        "water-spatial", measured, None, "Table 10: Water-Spatial fault counts"
    )
    assert measured[("read", "swlrc")][3] <= 1.15 * measured[("read", "sc")][3]
    # Paper: HLRC cuts write misses 10-30x versus SC/SW-LRC at coarse
    # granularity.  Our once-per-phase cell writes bounce each shared
    # page only once, so the protocols end up near parity (within 15%;
    # see EXPERIMENTS.md); the order-of-magnitude gap is reproduced on
    # Volrend (bench_table9) where writes genuinely interleave.
    assert measured[("write", "hlrc")][3] <= 1.15 * measured[("write", "sc")][3]
    assert measured[("write", "hlrc")][3] <= 1.15 * measured[("write", "swlrc")][3]
    bench_one_run(benchmark, "water-spatial", scale)
