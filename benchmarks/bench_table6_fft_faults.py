"""Table 6 (referenced in Section 5.2.2): FFT fault counts.

Paper shape claims:
* fine granularity multiplies read misses (no prefetching for the
  transpose sub-row reads): 64-byte blocks see ~4x the misses of
  256-byte blocks;
* beyond the sub-row size, read misses stop improving (each remote
  sub-row lives on a different page -> fragmentation);
* writes are local (zero write faults).
"""

from bench_faults_common import bench_one_run, collect_faults, emit_fault_table


def test_table6_fft_faults(benchmark, scale):
    measured = collect_faults("fft", scale)
    emit_fault_table("fft", measured, None, "Table 6: FFT fault counts")
    for proto in ("sc", "swlrc", "hlrc"):
        reads = measured[("read", proto)]
        assert reads[0] > 2 * reads[1], (proto, reads)
        # Fragmentation: once blocks exceed the sub-row, coarser blocks
        # stop helping.
        assert reads[3] >= 0.5 * reads[1], (proto, reads)
        assert sum(measured[("write", proto)]) == 0, proto
    bench_one_run(benchmark, "fft", scale)
