#!/usr/bin/env python
"""Rolling perf-trend log for the simulator-core micro suite.

The nightly CI job runs ``repro-dsm perf --out bench-nightly.json``,
restores the previous trend file from the workflow cache, appends one
entry per run, and uploads the pruned file as the ``perf-trend``
artifact.  Each line of the JSONL file is one run::

    {"sha": "1f0c0a...", "date": "2026-08-08", "pyversion": "3.12.3",
     "calibration_ms": 42.2,
     "micros": {"engine_churn": {"median_ms": 36.1,
                                 "events_per_sec": 1107000.0}, ...}}

Subcommands:

* ``append`` -- fold one bench JSON into the trend file (newest last,
  pruned to ``--keep`` entries);
* ``report`` -- render the trend as a per-micro table and flag drift:
  a latest median slower than the window median by more than
  ``--drift`` (after calibration scaling) prints a ``DRIFT`` marker
  and, under ``--strict``, fails the job.

Usage::

    python tools/perf_trend.py append --bench bench-nightly.json \\
        --trend perf-trend.jsonl --sha "$GITHUB_SHA"
    python tools/perf_trend.py report --trend perf-trend.jsonl
"""

from __future__ import annotations

import argparse
import datetime
import json
import statistics
import sys
from typing import Dict, List

#: throughput keys copied from the bench schema into trend entries
_RATE_KEYS = ("events_per_sec", "ops_per_sec", "runs_per_sec")


def _load_trend(path: str) -> List[Dict]:
    try:
        with open(path) as fh:
            return [json.loads(line) for line in fh if line.strip()]
    except FileNotFoundError:
        return []


def _write_trend(path: str, entries: List[Dict]) -> None:
    with open(path, "w") as fh:
        for e in entries:
            fh.write(json.dumps(e, sort_keys=True) + "\n")


def append(args) -> int:
    with open(args.bench) as fh:
        bench = json.load(fh)
    micros = {}
    for name, m in bench.get("micros", {}).items():
        row = {"median_ms": m["median_ms"]}
        for key in _RATE_KEYS:
            if key in m:
                row[key] = m[key]
        micros[name] = row
    entry = {
        "sha": args.sha or "unknown",
        "date": args.date or datetime.date.today().isoformat(),
        "pyversion": bench.get("pyversion"),
        "calibration_ms": bench.get("calibration", {}).get("spin_ms"),
        "micros": micros,
    }
    entries = _load_trend(args.trend)
    entries.append(entry)
    entries = entries[-args.keep:]
    _write_trend(args.trend, entries)
    print(f"trend: {len(entries)} entrie(s) in {args.trend} "
          f"(latest {entry['sha'][:12]} @ {entry['date']})")
    return 0


def _calibrated(entry: Dict, micro: str, ref_cal: float) -> float:
    """Median scaled to the reference machine speed via calibration."""
    cal = entry.get("calibration_ms") or ref_cal
    m = entry["micros"].get(micro)
    if m is None:
        return float("nan")
    return m["median_ms"] * (ref_cal / cal if cal else 1.0)


def report(args) -> int:
    entries = _load_trend(args.trend)
    if not entries:
        print(f"trend file {args.trend} is empty")
        return 0
    window = entries[-args.window:]
    latest = window[-1]
    ref_cal = latest.get("calibration_ms") or 1.0
    names = sorted(
        {name for e in window for name in e.get("micros", {})}
    )
    print(f"perf trend: {len(entries)} run(s) total, "
          f"window of {len(window)}, latest {latest['sha'][:12]} "
          f"@ {latest['date']}")
    print(f"  {'micro':18s} {'window-med':>11s} {'latest':>9s} "
          f"{'ratio':>6s}  rate (latest)")
    drifted = []
    for name in names:
        series = [
            _calibrated(e, name, ref_cal)
            for e in window
            if name in e.get("micros", {})
        ]
        cur = series[-1]
        med = statistics.median(series)
        ratio = cur / med if med else float("inf")
        mark = ""
        if len(series) >= args.min_runs and ratio > 1.0 + args.drift:
            mark = "  DRIFT"
            drifted.append(name)
        m = latest["micros"].get(name, {})
        rate = "  ".join(
            f"{m[k]:,.0f} {k.replace('_per_sec', '')}/s"
            for k in _RATE_KEYS if k in m
        )
        print(f"  {name:18s} {med:9.2f}ms {cur:7.2f}ms "
              f"x{ratio:5.3f}  {rate}{mark}")
    if drifted:
        print(f"drift beyond {args.drift:.0%} of the window median: "
              f"{', '.join(drifted)}")
        if args.strict:
            return 1
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = ap.add_subparsers(dest="cmd", required=True)

    ap_a = sub.add_parser("append", help="fold one bench JSON into the log")
    ap_a.add_argument("--bench", required=True,
                      help="suite output (repro-dsm perf --out ...)")
    ap_a.add_argument("--trend", required=True, help="trend JSONL file")
    ap_a.add_argument("--sha", default=None, help="commit sha of the run")
    ap_a.add_argument("--date", default=None,
                      help="ISO date override (default: today)")
    ap_a.add_argument("--keep", type=int, default=120,
                      help="max entries retained (default 120)")
    ap_a.set_defaults(fn=append)

    ap_r = sub.add_parser("report", help="render the trend + flag drift")
    ap_r.add_argument("--trend", required=True, help="trend JSONL file")
    ap_r.add_argument("--window", type=int, default=30,
                      help="runs considered for the window median")
    ap_r.add_argument("--drift", type=float, default=0.25,
                      help="flag latest/window-median above 1+this")
    ap_r.add_argument("--min-runs", type=int, default=5,
                      help="suppress drift marks below this many runs")
    ap_r.add_argument("--strict", action="store_true",
                      help="exit 1 when any micro drifts")
    ap_r.set_defaults(fn=report)

    args = ap.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
