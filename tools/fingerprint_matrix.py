#!/usr/bin/env python
"""Fast-vs-fallback stats-sha fingerprint matrix.

Runs every cell of a fixed evaluation matrix once under the numpy
simcore backend and once under the pure-python fallback (each in its
own subprocess, since the backend is chosen at import) and
cross-tabulates the stats hashes.  The two backends are contractually
bit-identical -- any sha mismatch is a correctness bug in one of them,
so the tool exits non-zero on the first divergent cell.

Matrix shapes:

* ``--smoke`` -- the three ``full_cell_*`` perf-micro shapes (lu x
  sc/swlrc/hlrc at granularity 1024).  Fast enough for every PR.
* default -- the full 99-cell matrix: all 12 apps x 3 protocols at the
  default granularity (36), the granularity sweep 3 apps x 5 protocols
  x 4 granularities at 8 nodes (60), and the interrupt notification
  mechanism on lu x 3 protocols (3).  Nightly CI runs this and uploads
  the cross-tab JSON as an artifact.

Usage::

    python tools/fingerprint_matrix.py --smoke --out fingerprints.json
    python tools/fingerprint_matrix.py -j 4 --out fingerprints.json
    python tools/fingerprint_matrix.py --list
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
from typing import Dict, List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

PROTOCOLS_3 = ("sc", "swlrc", "hlrc")
PROTOCOLS_5 = ("sc", "swlrc", "hlrc", "dc", "erc")
GRANULARITIES = (64, 256, 1024, 4096)
#: apps carrying the granularity sweep (cheap + diverse sharing shapes)
SWEEP_APPS = ("lu", "fft", "ocean-rowwise")
SCALE = "tiny"
BACKENDS = ("fast", "python")


def build_cells(smoke: bool) -> List[Dict]:
    if smoke:
        return [
            dict(app="lu", protocol=p, granularity=1024,
                 mechanism="polling", nprocs=16)
            for p in PROTOCOLS_3
        ]
    from repro.apps import APP_NAMES

    cells: List[Dict] = []
    for app in APP_NAMES:  # 12 apps x 3 protocols = 36
        for p in PROTOCOLS_3:
            cells.append(dict(app=app, protocol=p, granularity=1024,
                              mechanism="polling", nprocs=16))
    for app in SWEEP_APPS:  # 3 x 5 x 4 = 60 (8 nodes: disjoint from above)
        for p in PROTOCOLS_5:
            for g in GRANULARITIES:
                cells.append(dict(app=app, protocol=p, granularity=g,
                                  mechanism="polling", nprocs=8))
    for p in PROTOCOLS_3:  # interrupt mechanism = 3
        cells.append(dict(app="lu", protocol=p, granularity=1024,
                          mechanism="interrupt", nprocs=16))
    return cells


def cell_label(c: Dict) -> str:
    return (
        f"{c['app']}/{c['protocol']}-{c['granularity']}"
        f"/{c['mechanism']}/p{c['nprocs']}"
    )


# ----------------------------------------------------------------------
# worker: runs in a subprocess with REPRO_SIMCORE already set
# ----------------------------------------------------------------------
def run_worker() -> None:
    cells = json.load(sys.stdin)
    from repro.harness.experiment import RunConfig, run_experiment

    out = {}
    for c in cells:
        cfg = RunConfig(app=c["app"], protocol=c["protocol"],
                        granularity=c["granularity"],
                        mechanism=c["mechanism"], nprocs=c["nprocs"],
                        scale=SCALE)
        result = run_experiment(cfg)
        blob = json.dumps(result.stats.to_dict(), sort_keys=True,
                          default=float)
        out[cell_label(c)] = hashlib.sha256(blob.encode()).hexdigest()[:16]
    json.dump(out, sys.stdout)


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def _spawn_shards(backend: str, cells: List[Dict], jobs: int):
    """Start ``jobs`` worker subprocesses over round-robin cell shards."""
    procs = []
    for j in range(jobs):
        shard = cells[j::jobs]
        if not shard:
            continue
        env = dict(os.environ, REPRO_SIMCORE=backend)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(REPO_ROOT, "src"),
                        env.get("PYTHONPATH")) if p
        )
        proc = subprocess.Popen(
            [sys.executable, os.path.abspath(__file__), "--worker"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True, env=env,
        )
        proc.stdin.write(json.dumps(shard))
        proc.stdin.close()
        procs.append(proc)
    return procs


def _collect(procs) -> Dict[str, str]:
    shas: Dict[str, str] = {}
    for proc in procs:
        out = proc.stdout.read()
        err = proc.stderr.read()
        if proc.wait() != 0:
            sys.stderr.write(err)
            raise SystemExit(f"worker exited {proc.returncode}")
        shas.update(json.loads(out))
    return shas


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="3-cell PR smoke instead of the 99-cell matrix")
    ap.add_argument("--out", help="write the cross-tab JSON here")
    ap.add_argument("-j", "--jobs", type=int,
                    default=min(4, os.cpu_count() or 1),
                    help="worker subprocesses per backend")
    ap.add_argument("--list", action="store_true",
                    help="print the cell labels and exit")
    ap.add_argument("--worker", action="store_true", help=argparse.SUPPRESS)
    args = ap.parse_args(argv)

    if args.worker:
        run_worker()
        return 0

    cells = build_cells(args.smoke)
    if args.list:
        for c in cells:
            print(cell_label(c))
        print(f"{len(cells)} cells")
        return 0

    print(f"fingerprint matrix: {len(cells)} cells x "
          f"{len(BACKENDS)} backends, {args.jobs} worker(s) each")
    by_backend = {}
    running = {b: _spawn_shards(b, cells, args.jobs) for b in BACKENDS}
    for backend, procs in running.items():
        by_backend[backend] = _collect(procs)

    rows = []
    mismatches = 0
    for c in cells:
        label = cell_label(c)
        fast, python = by_backend["fast"][label], by_backend["python"][label]
        match = fast == python
        mismatches += not match
        rows.append({"cell": label, "fast": fast, "python": python,
                     "match": match})
        if not match:
            print(f"MISMATCH  {label}: fast={fast} python={python}")

    report = {
        "schema": 1,
        "scale": SCALE,
        "cells": len(cells),
        "mismatches": mismatches,
        "matrix": rows,
    }
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"cross-tab written to {args.out}")
    print(f"{len(cells) - mismatches}/{len(cells)} cells bit-identical "
          f"across backends")
    return 1 if mismatches else 0


if __name__ == "__main__":
    sys.exit(main())
