#!/usr/bin/env python3
"""Simulator-specific AST lint (the repro.check static pass).

General-purpose linters cannot know this codebase's discrete-event
rules, so this tool checks the conventions that keep the simulation
deterministic and the protocol engine sound:

* **SIM001** -- wall-clock time (``time.time``/``monotonic``/
  ``perf_counter``, ``datetime.now``/``utcnow``) inside simulation
  packages.  Simulated code must read ``engine.now``; wall-clock reads
  make runs host-dependent.  Host-side packages (``exec``, ``harness``,
  ``analysis``, ``analyze``) are exempt -- timeouts and progress
  reporting are their job.
* **SIM002** -- unseeded randomness (module-level ``random.*`` /
  ``numpy.random.*`` calls, or ``random.Random()`` /
  ``default_rng()`` / ``RandomState()`` without a seed argument)
  inside simulation packages.  Anything stochastic must derive from an
  explicit seed or the runs are not reproducible.
* **SIM003** -- ``yield from self.NAME(...)`` where ``NAME`` is a
  method of the same class that contains no ``yield``.  Delegating to
  a non-generator raises ``TypeError`` only when the call is actually
  reached, so these bugs hide in rarely-taken branches.  Methods that
  only ``raise`` (abstract stubs) are exempt: subclasses override them
  with real generators.
* **SIM004** -- a ``_h_*`` message handler containing ``yield``.
  Handlers are dispatched as plain calls from the protocol engine
  (``core/protocol.py``); a generator handler would be created and
  silently never run.
* **SIM005** -- touching a private attribute of an engine object
  (``engine._queue``, ``self.engine._now``, ...) outside
  ``sim/engine.py``.  The engine's public surface (``now``,
  ``schedule``, ``run``...) is the contract; reaching into its state
  breaks when the event-loop internals change.
* **SIM006** -- iterating over an unordered collection where the order
  can feed event scheduling.  Flagged unconditionally for ``set`` /
  ``frozenset`` values (literals, comprehensions, ``set()`` calls,
  attributes assigned or annotated as sets, and entries of
  ``Dict[..., Set[...]]`` attributes): set order is a function of hash
  seeding and insertion history, so two code paths that build the same
  logical set can schedule events in different orders -- which breaks
  replay-based exploration (``repro.mc``) and golden-stats runs.
  ``dict.values()/.items()/.keys()`` views are insertion-ordered and
  only flagged when the loop body sends messages or schedules events
  directly: the order is then a hidden dependency on arrival history.
  The fix is an explicit order (``sorted(...)``); iteration wrapped in
  ``sorted()`` or consumed by order-insensitive reducers
  (``sum``/``len``/``min``/``max``/``any``/``all``/``set``) is exempt.
* **SIM007** -- calling a generator-returning helper as a bare
  statement, without ``yield from``: ``self.NAME(...)`` where ``NAME``
  is a generator method, a bare call to a local generator function, or
  a discarded ``dsm.<op>(...)`` from the app/runtime API.  The call
  builds a generator and throws it away, so every simulated effect
  inside it (accesses, waits, protocol traffic) silently never
  happens.  This is the same bug class the ``repro.analyze`` CFG
  builder models: a dropped generator contributes no footprint.

The AST/visitor/noqa/reporting core is shared with the static labeling
checker in ``repro.analyze`` (see ``repro/analyze/core.py``); both
tools use the same ``Finding`` type and ``# noqa`` syntax.

Suppress a finding with ``# noqa`` or ``# noqa: SIM00x`` on the line.

Usage: ``python tools/lint_sim.py [paths...]`` (default: ``src/repro``
and ``tools``).  Exits 1 if anything is flagged.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List, Optional, Tuple

try:
    from repro.analyze.core import (
        Finding,
        contains_yield,
        dotted,
        filter_noqa,
        is_abstract_stub,
        parse_source,
        run_lint,
    )
    from repro.analyze.core import ann_head as _ann_head
except ImportError:  # running as a script without the package installed
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.analyze.core import (
        Finding,
        contains_yield,
        dotted,
        filter_noqa,
        is_abstract_stub,
        parse_source,
        run_lint,
    )
    from repro.analyze.core import ann_head as _ann_head

#: repro subpackages whose code runs *inside* the simulation -- the
#: determinism rules (SIM001/SIM002) apply only here
SIM_PACKAGES = (
    "repro/sim", "repro/core", "repro/runtime", "repro/sync",
    "repro/cluster", "repro/memory", "repro/net", "repro/apps",
    "repro/stats", "repro/check", "repro/mc",
)

#: wall-clock reads (module attr -> function names)
WALL_CLOCK = {
    "time": {"time", "monotonic", "perf_counter", "time_ns",
             "monotonic_ns", "perf_counter_ns"},
    "datetime": {"now", "utcnow", "today"},
}

#: seeded-generator constructors: fine *with* a seed argument
SEEDED_CTORS = {"Random", "default_rng", "RandomState"}

#: SIM006: annotations that mean "this is a set"
SET_ANN = {"Set", "FrozenSet", "MutableSet", "set", "frozenset"}
#: SIM006: annotations that mean "this is a dict"
DICT_ANN = {"Dict", "DefaultDict", "dict", "defaultdict"}
#: SIM006: consuming calls for which iteration order cannot matter
ORDER_FREE = {"sum", "len", "min", "max", "any", "all", "set",
              "frozenset", "sorted"}
#: SIM006: calls in a loop body that mean "this loop schedules events"
SCHEDULING_CALLS = {"send", "schedule", "call_soon", "post",
                    "send_message", "deliver", "broadcast"}

#: SIM007: generator methods of the runtime Dsm API -- a bare
#: ``dsm.<op>(...)`` statement drops the generator and its effects
DSM_GEN_API = {
    "read", "write", "touch_read", "touch_write", "compute",
    "acquire", "release", "barrier",
}


def _ann_value_is_set(node: ast.AST) -> bool:
    """True for ``Dict[..., Set[...]]``-shaped annotations."""
    if not isinstance(node, ast.Subscript):
        return False
    sl = node.slice
    return (
        isinstance(sl, ast.Tuple)
        and len(sl.elts) == 2
        and _ann_head(sl.elts[1]) in SET_ANN
    )


def _is_set_value(node: ast.AST) -> bool:
    """An expression that definitely builds a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _dictview_call(node: ast.AST) -> Optional[str]:
    """'values'/'items'/'keys' when node is that zero-arg method call."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("values", "items", "keys")
        and not node.args
        and not node.keywords
    ):
        return node.func.attr
    return None


def _body_scheduling_call(body: List[ast.AST]) -> Optional[str]:
    """Name of the first event-scheduling call in a loop body, if any."""
    for st in body:
        for sub in ast.walk(st):
            if isinstance(sub, ast.Call) and isinstance(
                sub.func, ast.Attribute
            ) and sub.func.attr in SCHEDULING_CALLS:
                return sub.func.attr
    return None


def _class_set_attrs(node: ast.ClassDef) -> Tuple[set, set]:
    """Attribute names assigned/annotated as sets, and as dicts-of-sets."""
    set_attrs: set = set()
    dictset_attrs: set = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
            tgt, val, ann = sub.targets[0], sub.value, None
        elif isinstance(sub, ast.AnnAssign):
            tgt, val, ann = sub.target, sub.value, sub.annotation
        else:
            continue
        if not (
            isinstance(tgt, ast.Attribute)
            and isinstance(tgt.value, ast.Name)
            and tgt.value.id == "self"
        ):
            continue
        if ann is not None:
            head = _ann_head(ann)
            if head in SET_ANN:
                set_attrs.add(tgt.attr)
            elif head in DICT_ANN and _ann_value_is_set(ann):
                dictset_attrs.add(tgt.attr)
        if val is not None and _is_set_value(val):
            set_attrs.add(tgt.attr)
    return set_attrs, dictset_attrs


class _Linter(ast.NodeVisitor):
    def __init__(self, path: Path, in_sim: bool, is_engine: bool):
        self.path = path
        self.in_sim = in_sim
        self.is_engine = is_engine
        self.findings: List[Finding] = []
        #: (class node, {method name: def node}, set attrs, dict-of-set
        #: attrs) stack
        self._class_stack: List[Tuple[ast.ClassDef, dict, set, set]] = []
        #: per enclosing function: {name: local def node} (SIM007)
        self._func_stack: List[dict] = []
        #: comprehensions consumed by order-insensitive reducers
        self._order_free: set = set()

    def flag(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(Finding(self.path, node.lineno, code, message))

    # -- class / method context ----------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        methods = {
            st.name: st
            for st in node.body
            if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        set_attrs, dictset_attrs = _class_set_attrs(node)
        self._class_stack.append((node, methods, set_attrs, dictset_attrs))
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node.name.startswith("_h_") and contains_yield(node):
            self.flag(
                node, "SIM004",
                f"message handler {node.name} contains yield; handlers "
                "are plain calls -- a generator handler never runs",
            )
        local_defs = {
            st.name: st
            for st in ast.walk(node)
            if isinstance(st, ast.FunctionDef) and st is not node
        }
        self._func_stack.append(local_defs)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    # -- SIM003: yield from self.<non-generator>() ---------------------
    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        call = node.value
        if (
            self._class_stack
            and isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id == "self"
        ):
            target = self._class_stack[-1][1].get(call.func.attr)
            if (
                target is not None
                and isinstance(target, ast.FunctionDef)
                and not contains_yield(target)
                and not is_abstract_stub(target)
            ):
                self.flag(
                    node, "SIM003",
                    f"yield from self.{call.func.attr}(...) but "
                    f"{call.func.attr} (line {target.lineno}) never "
                    "yields -- not a generator",
                )
        self.generic_visit(node)

    # -- SIM007: generator called without yield from -------------------
    def visit_Expr(self, node: ast.Expr) -> None:
        call = node.value
        if isinstance(call, ast.Call):
            self._check_dropped_generator(node, call)
        self.generic_visit(node)

    def _check_dropped_generator(self, stmt: ast.Expr, call: ast.Call) -> None:
        """A bare-statement call that builds and discards a generator."""
        func = call.func
        # self.NAME(...) where NAME is a generator method of this class
        if (
            self._class_stack
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            target = self._class_stack[-1][1].get(func.attr)
            if (
                target is not None
                and isinstance(target, ast.FunctionDef)
                and contains_yield(target)
            ):
                self.flag(
                    stmt, "SIM007",
                    f"self.{func.attr}(...) called without yield from but "
                    f"{func.attr} (line {target.lineno}) is a generator -- "
                    "its simulated effects are silently dropped",
                )
            return
        # dsm.<op>(...) from the runtime app API
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "dsm"
            and func.attr in DSM_GEN_API
        ):
            self.flag(
                stmt, "SIM007",
                f"dsm.{func.attr}(...) called without yield from; the "
                "operation's simulated effects are silently dropped",
            )
            return
        # NAME(...) where NAME is a local generator function
        if isinstance(func, ast.Name):
            for scope in reversed(self._func_stack):
                target = scope.get(func.id)
                if target is not None:
                    if contains_yield(target):
                        self.flag(
                            stmt, "SIM007",
                            f"{func.id}(...) called without yield from but "
                            f"{func.id} (line {target.lineno}) is a "
                            "generator -- its simulated effects are "
                            "silently dropped",
                        )
                    return

    # -- SIM001 / SIM002: calls ----------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = dotted(node.func)
        if name and self.in_sim:
            self._check_wall_clock(node, name)
            self._check_random(node, name)
        if name and name.split(".")[-1] in ORDER_FREE:
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                    self._order_free.add(id(arg))
        self.generic_visit(node)

    def _check_wall_clock(self, node: ast.Call, name: str) -> None:
        parts = name.split(".")
        if len(parts) >= 2 and parts[-2] in WALL_CLOCK:
            if parts[-1] in WALL_CLOCK[parts[-2]]:
                self.flag(
                    node, "SIM001",
                    f"wall-clock read {name}() in simulation code; "
                    "use engine.now",
                )

    def _check_random(self, node: ast.Call, name: str) -> None:
        parts = name.split(".")
        if len(parts) < 2 or "random" not in parts[:-1]:
            return
        tail = parts[-1]
        if tail == "seed":
            return  # explicit seeding is the fix, not the bug
        if tail in SEEDED_CTORS:
            if not node.args and not node.keywords:
                self.flag(
                    node, "SIM002",
                    f"{name}() without a seed in simulation code",
                )
            return
        self.flag(
            node, "SIM002",
            f"module-level {name}() shares unseeded global state; "
            "use a seeded generator",
        )

    # -- SIM006: unordered iteration -----------------------------------
    def _attr_kind(self, node: ast.AST) -> Optional[str]:
        """'set'/'dictset' when node is a known self attribute."""
        if not (
            self._class_stack
            and isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return None
        _, _, set_attrs, dictset_attrs = self._class_stack[-1]
        if node.attr in set_attrs:
            return "set"
        if node.attr in dictset_attrs:
            return "dictset"
        return None

    def _set_iter_reason(self, it: ast.AST) -> Optional[str]:
        """Why iterating `it` has no defined order, or None."""
        if _is_set_value(it):
            return "a set expression"
        if isinstance(it, ast.Call) and isinstance(it.func, ast.Attribute):
            if it.func.attr == "get" and self._attr_kind(
                it.func.value
            ) == "dictset":
                return f"set-valued entry of self.{it.func.value.attr}"
            return None
        if isinstance(it, ast.Subscript) and self._attr_kind(
            it.value
        ) == "dictset":
            return f"set-valued entry of self.{it.value.attr}"
        if self._attr_kind(it) == "set":
            return f"set attribute self.{it.attr}"
        return None

    def _check_unordered_iter(
        self, it: ast.AST, body: List[ast.AST], where: ast.AST
    ) -> None:
        if not self.in_sim:
            return
        reason = self._set_iter_reason(it)
        if reason is not None:
            self.flag(
                where, "SIM006",
                f"iteration over {reason}; set order depends on hashes "
                "and insertion history -- iterate sorted(...)",
            )
            return
        view = _dictview_call(it)
        if view is not None and body:
            call = _body_scheduling_call(body)
            if call is not None:
                self.flag(
                    where, "SIM006",
                    f"loop over .{view}() calls {call}(); event order "
                    "then depends on dict insertion history -- iterate "
                    "a sorted view",
                )

    def visit_For(self, node: ast.For) -> None:
        self._check_unordered_iter(node.iter, node.body, node)
        self.generic_visit(node)

    visit_AsyncFor = visit_For

    def _visit_comp(self, node) -> None:
        if id(node) not in self._order_free:
            for gen in node.generators:
                self._check_unordered_iter(gen.iter, [node.elt], node)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    # -- SIM005: engine privates ---------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            not self.is_engine
            and node.attr.startswith("_")
            and not node.attr.startswith("__")
        ):
            base = dotted(node.value)
            if base and base.split(".")[-1] == "engine":
                self.flag(
                    node, "SIM005",
                    f"access to engine private {base}.{node.attr}; "
                    "use the engine's public interface",
                )
        self.generic_visit(node)


def lint_file(path: Path) -> List[Finding]:
    path = Path(path)
    tree, source, err = parse_source(path)
    if err is not None:
        return [err]
    posix = path.as_posix()
    linter = _Linter(
        path,
        in_sim=any(p in posix for p in SIM_PACKAGES),
        is_engine=posix.endswith("repro/sim/engine.py"),
    )
    linter.visit(tree)
    return filter_noqa(linter.findings, source)


def main(argv: Optional[List[str]] = None) -> int:
    args = (argv if argv is not None else sys.argv[1:]) or ["src/repro", "tools"]
    return run_lint(args, lint_file, label="lint_sim")


if __name__ == "__main__":
    raise SystemExit(main())
